"""Precomputation of the diagonal cost operator (Sec. III-A of the paper).

The central optimization of the paper: the diagonal of the problem Hamiltonian
``Ĉ = Σ_x f(x) |x><x|`` is computed once, stored as a 2^n *cost vector*, and
reused (a) every time the phase operator is applied — one element-wise complex
multiply instead of re-simulating O(|T|) gates — and (b) every time the QAOA
objective ``<γβ|Ĉ|γβ>`` is evaluated — one inner product.

The kernel mirrors the GPU kernel described in the paper: for a term
``(w, t)`` and basis-state index ``x``, the term value is
``w · (−1)^popcount(x & mask_t)`` — a bitwise-AND followed by a population
count.  The computation is embarrassingly parallel over vector elements and
*local*: element ``x`` depends on nothing but ``x`` itself, which is what makes
the precomputation communication-free in the distributed setting (each rank
precomputes exactly its slice of the cost vector, Sec. III-C).

Memory notes reproduced from the paper:

* LABS cost values are non-negative integers below 2¹⁶ for n < 65, so the
  diagonal can be stored as ``uint16`` (``CompressedDiagonal``), adding 2
  bytes per 16-byte complex128 amplitude — the **12.5 %** memory overhead
  quoted in the paper's abstract (``diagonal_memory_overhead``);
* a full-precision float64 diagonal costs 8 bytes per amplitude (50 %) and is
  the default for problems with non-integer weights.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from ..problems.terms import (
    Term,
    get_offset,
    normalize_terms,
    num_variables,
    validate_terms,
)

__all__ = [
    "term_mask",
    "term_masks_and_weights",
    "precompute_cost_diagonal",
    "precompute_cost_diagonal_slice",
    "precompute_cost_diagonal_from_function",
    "apply_terms_to_slice",
    "CompressedDiagonal",
    "compress_diagonal",
    "DiagonalPhaseTable",
    "build_phase_table",
    "diagonal_memory_bytes",
    "diagonal_memory_overhead",
    "DEFAULT_CHUNK_SIZE",
]

#: Number of basis states processed per chunk by the vectorized kernel.  Keeps
#: temporary buffers small enough to stay cache-resident without paying Python
#: loop overhead per element (guide: vectorize, mind cache effects).
DEFAULT_CHUNK_SIZE: int = 1 << 20


def term_mask(indices: Iterable[int]) -> int:
    """Bit mask with a 1 at every qubit index of the term."""
    mask = 0
    for i in indices:
        mask |= 1 << int(i)
    return mask


def term_masks_and_weights(terms: Iterable[tuple[float, Iterable[int]]],
                           n_qubits: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Split a term list into (masks, weights, constant offset) arrays.

    The masks/weights arrays cover only non-constant terms; the scalar offset
    accumulates all empty-index terms.
    """
    normalized = validate_terms(terms, n_qubits)
    masks: list[int] = []
    weights: list[float] = []
    offset = 0.0
    for w, idx in normalized:
        if len(idx) == 0:
            offset += w
        else:
            masks.append(term_mask(idx))
            weights.append(w)
    return (np.asarray(masks, dtype=np.uint64),
            np.asarray(weights, dtype=np.float64),
            offset)


def apply_terms_to_slice(masks: np.ndarray, weights: np.ndarray, offset: float,
                         start: int, stop: int,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Evaluate the cost polynomial on the index range ``[start, stop)``.

    This is the innermost kernel: ``out[x - start] = offset + Σ_k w_k ·
    (−1)^popcount(x & mask_k)``.  ``out`` may be supplied to accumulate in
    place (it is overwritten, not added to).
    """
    if stop < start:
        raise ValueError(f"invalid slice [{start}, {stop})")
    length = stop - start
    if out is None:
        out = np.empty(length, dtype=np.float64)
    elif out.shape[0] != length:
        raise ValueError(f"output buffer has length {out.shape[0]}, expected {length}")
    out.fill(offset)
    if length == 0 or masks.size == 0:
        return out
    idx = np.arange(start, stop, dtype=np.uint64)
    # Chunk over terms is unnecessary (term count is modest); chunk over the
    # index range is handled by the callers.  One temporary per term batch.
    for mask, w in zip(masks, weights):
        parity = (np.bitwise_count(idx & mask) & np.uint64(1)).astype(np.float64)
        # (-1)^parity = 1 - 2*parity
        out += w * (1.0 - 2.0 * parity)
    return out


def precompute_cost_diagonal(terms: Iterable[tuple[float, Iterable[int]]],
                             n_qubits: int | None = None,
                             *,
                             dtype: np.dtype | type = np.float64,
                             chunk_size: int = DEFAULT_CHUNK_SIZE,
                             out: np.ndarray | None = None) -> np.ndarray:
    """Precompute the full 2^n cost vector from polynomial terms.

    Parameters
    ----------
    terms:
        Iterable of ``(weight, indices)`` pairs (Eq. 1).
    n_qubits:
        Number of qubits; inferred from the largest index if omitted.
    dtype:
        Output dtype (``float64`` by default; ``float32`` supported for
        reduced-memory studies).
    chunk_size:
        Number of basis states processed per vectorized chunk.
    out:
        Optional preallocated output array of length 2^n.

    Returns
    -------
    numpy.ndarray
        Array ``c`` with ``c[x] = f(x)`` for every basis state ``x``.
    """
    term_list = normalize_terms(terms)
    if n_qubits is None:
        n_qubits = num_variables(term_list)
        if n_qubits == 0:
            raise ValueError("cannot infer qubit count from constant-only terms")
    size = 1 << n_qubits
    masks, weights, offset = term_masks_and_weights(term_list, n_qubits)
    if out is None:
        out = np.empty(size, dtype=dtype)
    elif out.shape[0] != size:
        raise ValueError(f"output buffer has length {out.shape[0]}, expected {size}")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    buf = np.empty(min(chunk_size, size), dtype=np.float64)
    for start in range(0, size, chunk_size):
        stop = min(start + chunk_size, size)
        view = buf[: stop - start]
        apply_terms_to_slice(masks, weights, offset, start, stop, out=view)
        out[start:stop] = view
    return out


def precompute_cost_diagonal_slice(terms: Iterable[tuple[float, Iterable[int]]],
                                   n_qubits: int,
                                   start: int,
                                   stop: int,
                                   *,
                                   dtype: np.dtype | type = np.float64,
                                   chunk_size: int = DEFAULT_CHUNK_SIZE) -> np.ndarray:
    """Precompute only the cost-vector slice ``[start, stop)``.

    Used by the distributed simulators (Sec. III-C): each rank computes the
    slice corresponding to its portion of the state vector, with no
    communication.
    """
    size = 1 << n_qubits
    if not (0 <= start <= stop <= size):
        raise ValueError(f"slice [{start}, {stop}) out of range for 2^{n_qubits} states")
    masks, weights, offset = term_masks_and_weights(terms, n_qubits)
    out = np.empty(stop - start, dtype=dtype)
    buf = np.empty(min(chunk_size, max(stop - start, 1)), dtype=np.float64)
    for s in range(start, stop, chunk_size):
        e = min(s + chunk_size, stop)
        view = buf[: e - s]
        apply_terms_to_slice(masks, weights, offset, s, e, out=view)
        out[s - start:e - start] = view
    return out


def precompute_cost_diagonal_from_function(func: Callable[[np.ndarray], float],
                                           n_qubits: int,
                                           *,
                                           dtype: np.dtype | type = np.float64,
                                           vectorized: bool = False) -> np.ndarray:
    """Precompute the cost vector from an arbitrary Python cost function.

    This mirrors QOKit's support for cost functions given as a Python lambda
    rather than as polynomial terms.  ``func`` receives, for each basis state,
    the little-endian bit array (length ``n_qubits``, dtype int64) and must
    return a float.  With ``vectorized=True`` the function instead receives the
    full ``(2^n, n)`` bit matrix and must return a length-2^n vector.
    """
    size = 1 << n_qubits
    idx = np.arange(size, dtype=np.uint64)[:, None]
    shifts = np.arange(n_qubits, dtype=np.uint64)[None, :]
    bits = ((idx >> shifts) & np.uint64(1)).astype(np.int64)
    if vectorized:
        values = np.asarray(func(bits), dtype=np.float64)
        if values.shape != (size,):
            raise ValueError(f"vectorized cost function returned shape {values.shape}, "
                             f"expected ({size},)")
        return values.astype(dtype)
    out = np.empty(size, dtype=dtype)
    for x in range(size):
        out[x] = func(bits[x])
    return out


# ---------------------------------------------------------------------------
# Compressed (integer) diagonals — Sec. V-B: uint16 storage for LABS at scale.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompressedDiagonal:
    """Integer-compressed cost diagonal ``costs[x] = scale * stored[x] + shift``.

    The paper stores the LABS diagonal as ``uint16`` (its values are
    non-negative integers below 2¹⁶ for n < 65), reducing the memory overhead
    of precomputation from 12.5 % to under 2 %.  This container generalizes the
    trick to any affine integer encoding.
    """

    values: np.ndarray
    scale: float
    shift: float

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored representation."""
        return int(self.values.nbytes)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def decompress(self, dtype: np.dtype | type = np.float64) -> np.ndarray:
        """Reconstruct the float cost vector.

        ``dtype`` may be a NumPy scalar type (``np.float32``) or a ``np.dtype``
        instance (``np.dtype("float32")``) — dtype instances are not callable,
        so the affine parameters go through ``np.dtype(dtype).type``.
        """
        scalar = np.dtype(dtype).type
        return (self.values.astype(dtype) * scalar(self.scale)) + scalar(self.shift)

    def __getitem__(self, item) -> np.ndarray:
        """Decompressed access to a slice (used by phase-operator kernels)."""
        return self.values[item].astype(np.float64) * self.scale + self.shift


def compress_diagonal(costs: np.ndarray, *, dtype: np.dtype | type = np.uint16,
                      rtol: float = 1e-9) -> CompressedDiagonal:
    """Compress a float cost vector into an integer representation.

    The costs must be (approximately) integer multiples of a common scale after
    subtracting their minimum; for LABS with the standard formulation they are
    exact non-negative integers and compress losslessly into ``uint16`` for
    n < 65.  Raises ``ValueError`` if the values do not fit the target dtype or
    are not close to an integer grid.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        raise ValueError("cannot compress an empty diagonal")
    info = np.iinfo(dtype)
    shift = float(costs.min())
    shifted = costs - shift
    max_val = float(shifted.max())
    if max_val == 0.0:
        scale = 1.0
    else:
        # Use the greatest common scale consistent with integer storage: try
        # scale 1 first (typical integer-valued objectives such as LABS and
        # unweighted MaxCut), otherwise scale so the max maps to the dtype max.
        if np.allclose(shifted, np.round(shifted), rtol=0, atol=rtol * max(1.0, max_val)) \
                and np.round(max_val) <= info.max:
            scale = 1.0
        else:
            scale = max_val / info.max
    quantized = np.round(shifted / scale)
    if quantized.max() > info.max or quantized.min() < info.min:
        raise ValueError(
            f"cost values spanning [{costs.min()}, {costs.max()}] do not fit dtype {np.dtype(dtype)}"
        )
    if not np.allclose(quantized * scale, shifted, rtol=0, atol=max(rtol * max(1.0, max_val), 1e-12)):
        raise ValueError("cost values are not representable on an integer grid; "
                         "refusing lossy compression (pass a float dtype instead)")
    return CompressedDiagonal(values=quantized.astype(dtype), scale=float(scale), shift=shift)


# ---------------------------------------------------------------------------
# Phase tables — unique-value factorization of the phase operator.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DiagonalPhaseTable:
    """Unique-value factorization of a cost diagonal for phase application.

    Combinatorial cost diagonals take few distinct values (LABS sidelobe
    energies and unweighted MaxCut sizes are small integers), so the phase
    operator factors as ``exp(-i γ c[x]) = table[inverse[x]]`` with
    ``table = exp(-i γ · unique_values)``.  One transcendental per *unique*
    value plus a gather replaces one transcendental per *basis state* — the
    dominant per-layer saving of the fused batch engine, where the same
    diagonal is phased with many different ``γ`` values.
    """

    #: sorted distinct cost values, shape (U,)
    unique_values: np.ndarray
    #: index of each basis state's cost in ``unique_values``, shape (2^n,)
    inverse: np.ndarray

    @property
    def n_unique(self) -> int:
        """Number of distinct cost values U."""
        return int(self.unique_values.shape[0])

    def __len__(self) -> int:
        return int(self.inverse.shape[0])

    def factors(self, gamma: float,
                dtype: np.dtype | type = np.complex128) -> np.ndarray:
        """The length-U table ``exp(-i γ · unique_values)``.

        ``dtype`` selects the precision of the gathered factors (the table is
        tiny, so the exponential is always evaluated in double and cast) —
        single-precision simulators gather ``complex64`` factors so the
        full-width multiply into the state stays at state precision.
        """
        table = np.exp(self.unique_values * (-1j * float(gamma)))
        return table.astype(dtype, copy=False)

    def factors_batch(self, gammas: np.ndarray,
                      dtype: np.dtype | type = np.complex128) -> np.ndarray:
        """Per-schedule tables ``exp(-i γ_b · unique_values)``, shape (B, U)."""
        g = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        table = np.exp(np.outer(g, self.unique_values) * (-1j))
        return table.astype(dtype, copy=False)

    def phases(self, gamma: float, out: np.ndarray | None = None) -> np.ndarray:
        """Full-length phase vector ``exp(-i γ c)`` via table gather."""
        if out is None:
            return self.factors(gamma)[self.inverse]
        np.take(self.factors(gamma, dtype=out.dtype), self.inverse, out=out)
        return out


def build_phase_table(costs: np.ndarray, *,
                      max_unique_fraction: float = 0.125) -> DiagonalPhaseTable | None:
    """Build a :class:`DiagonalPhaseTable` when the diagonal is repetitive enough.

    Returns ``None`` when the distinct-value count exceeds
    ``max_unique_fraction`` of the diagonal length — the gather would then
    save nothing over evaluating ``exp`` directly (e.g. generic real-weighted
    problems where almost every basis state has a distinct cost).
    """
    arr = np.asarray(costs, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("phase table requires a non-empty 1-D cost diagonal")
    if not 0.0 < max_unique_fraction <= 1.0:
        raise ValueError("max_unique_fraction must be in (0, 1]")
    unique, inverse = np.unique(arr, return_inverse=True)
    if unique.size > max(2, int(arr.size * max_unique_fraction)):
        return None
    inverse = np.ascontiguousarray(inverse, dtype=np.intp)
    # Tables are cached on simulators and inside compiled execution plans and
    # shared by every evaluation — read-only, like the diagonal cache.
    unique.setflags(write=False)
    inverse.setflags(write=False)
    return DiagonalPhaseTable(unique_values=unique, inverse=inverse)


def diagonal_memory_bytes(n_qubits: int, dtype: np.dtype | type = np.float64) -> int:
    """Memory required to store a full 2^n cost vector of the given dtype."""
    return (1 << n_qubits) * np.dtype(dtype).itemsize


def diagonal_memory_overhead(n_qubits: int,
                             diag_dtype: np.dtype | type = np.float64,
                             state_dtype: np.dtype | type = np.complex128) -> float:
    """Relative memory overhead of storing the diagonal next to the state vector.

    A full-precision float64 diagonal next to a complex128 state vector is a
    50 % overhead; the compressed uint16 diagonal used for LABS at scale
    (Sec. V-B) is 2/16 = 12.5 %, which is the figure quoted in the paper's
    abstract.
    """
    return np.dtype(diag_dtype).itemsize / np.dtype(state_dtype).itemsize
