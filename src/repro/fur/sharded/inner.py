"""Inner kernel providers: which single-shard kernels run inside each slab.

The sharded backend owns the slicing, the worker pool and the slab
exchanges; the arithmetic *inside* a shard is delegated to an existing
kernel family so the compiled single-pass tier, the precision paths and the
cache-blocked traversal all come free:

* ``"jit"`` — the single-pass tier of :mod:`repro.fur.jit.kernels` (numba or
  runtime-compiled C when live, numpy delegation otherwise): phase + every
  X butterfly of a layer per cache-sized tile.
* ``"c"`` — the allocation-free blocked kernels of
  :mod:`repro.fur.cvect.kernels`: one blocked SU(2) sweep per qubit.  Its
  pair update is position-independent, which is what makes results
  bitwise-invariant under the shard count — the reference inner for the
  invariance tests.
* ``"python"`` — the gemm-grouped NumPy kernels of
  :mod:`repro.fur.python.furx` (allocating; the portable fallback).
* ``"auto"`` (default) — ``jit`` when its compiled path is live, else ``c``.

Adapters normalize the per-slab call surface: a batched phase sweep, a
batched all-local X sweep, and the fused phase+X sweep.  XY edge rotations
and expectation reductions are position-based and shared by all inners (see
:mod:`repro.fur.sharded.qaoa_simulator`), so they are not part of this
protocol.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..cvect.kernels import (
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_su2_batch_blocked,
)

__all__ = ["InnerProvider", "resolve_inner", "INNER_NAMES"]

INNER_NAMES = ("auto", "jit", "c", "python")


class InnerProvider:
    """Per-slab kernel adapter; subclasses bind one kernel family."""

    name: str = "base"

    def warm(self, dtype: np.dtype, n_local: int) -> float:
        """Prepare kernels for one slab signature; returns compile seconds."""
        return 0.0

    def phase_block(self, block_s: np.ndarray, gammas: np.ndarray, *,
                    costs: np.ndarray, table: Any,
                    workspace: KernelWorkspace) -> None:
        """Batched phase sweep ``row_r *= exp(-i γ_r c_slice)`` on one slab."""
        raise NotImplementedError

    def furx_sweep(self, block_s: np.ndarray, betas: np.ndarray,
                   a_rows: np.ndarray, b_rows: np.ndarray, *, n_local: int,
                   workspace: KernelWorkspace) -> None:
        """Rotate every local bit position of one slab (the all-local X sweep)."""
        raise NotImplementedError

    def furx_phase_sweep(self, block_s: np.ndarray, gammas: np.ndarray,
                         betas: np.ndarray, a_rows: np.ndarray,
                         b_rows: np.ndarray, *, n_local: int,
                         costs: np.ndarray, table: Any,
                         workspace: KernelWorkspace) -> None:
        """Fused phase + all-local X sweep (default: phase, then sweep)."""
        self.phase_block(block_s, gammas, costs=costs, table=table,
                         workspace=workspace)
        self.furx_sweep(block_s, betas, a_rows, b_rows, n_local=n_local,
                        workspace=workspace)


class _CInner(InnerProvider):
    """Blocked cvect kernels: zero-allocation, shard-count-invariant."""

    name = "c"

    def phase_block(self, block_s, gammas, *, costs, table, workspace):
        apply_phase_batch_inplace(block_s, costs, gammas, workspace,
                                  phase_table=table)

    def furx_sweep(self, block_s, betas, a_rows, b_rows, *, n_local,
                   workspace):
        del betas
        for pos in range(n_local):
            apply_su2_batch_blocked(block_s, a_rows, b_rows, pos, workspace)


class _PythonInner(InnerProvider):
    """Gemm-grouped NumPy X sweep (allocates its own ping-pong scratch)."""

    name = "python"

    def phase_block(self, block_s, gammas, *, costs, table, workspace):
        apply_phase_batch_inplace(block_s, costs, gammas, workspace,
                                  phase_table=table)

    def furx_sweep(self, block_s, betas, a_rows, b_rows, *, n_local,
                   workspace):
        del a_rows, b_rows, workspace
        from ..python.furx import furx_all_batch

        furx_all_batch(block_s, betas, n_local)


class _JitInner(InnerProvider):
    """Single-pass tier: phase + every butterfly of a layer per cache tile."""

    name = "jit"

    def warm(self, dtype, n_local):
        from ..jit import kernels

        return kernels.ensure_kernels(dtype, n_local, "x")

    def phase_block(self, block_s, gammas, *, costs, table, workspace):
        del workspace
        from ..jit import kernels

        kernels.phase_block(block_s, gammas, phase_table=table, costs=costs)

    def furx_sweep(self, block_s, betas, a_rows, b_rows, *, n_local,
                   workspace):
        del a_rows, b_rows, n_local, workspace
        from ..jit import kernels

        kernels.furx_block(block_s, betas)

    def furx_phase_sweep(self, block_s, gammas, betas, a_rows, b_rows, *,
                         n_local, costs, table, workspace):
        del a_rows, b_rows, n_local, workspace
        from ..jit import kernels

        kernels.furx_phase_block(block_s, gammas, betas, phase_table=table,
                                 costs=costs)


_INNERS = {"c": _CInner, "python": _PythonInner, "jit": _JitInner}


def resolve_inner(name: str = "auto") -> InnerProvider:
    """Resolve an inner-provider name to an adapter instance.

    ``"auto"`` probes the jit tier's fallback ladder: a live compiled path
    (numba or the runtime-compiled C library) wins, the numpy rung falls
    back to the blocked ``c`` kernels — delegating slab arithmetic to jit's
    *numpy* rung would just be the python kernels with extra indirection.
    """
    key = str(name).lower()
    if key not in INNER_NAMES:
        raise ValueError(
            f"unknown inner provider {name!r}; available: {INNER_NAMES}")
    if key == "auto":
        from ..jit import kernels

        key = "jit" if kernels.active_path() != "numpy" else "c"
    return _INNERS[key]()
