"""Global/local qubit bookkeeping for the in-process sharded backend.

The ``(B, 2^n)`` state block is split into ``K = 2^g`` shard slabs along the
top ``g`` index bits — the *global* qubits, exactly the slicing of the MPI
families (:mod:`repro.fur.mpi`), but with every slab living in the same
address space so "communication" is a pairwise slab swap between NumPy
arrays.  Mixer sweeps that touch a global qubit relabel it local first:
instead of physically permuting the full state, a transposition exchanges
index *bits* between the shard axis and a local position, the rotation runs
on the now-local bit, and the inverse transposition restores the canonical
order (qibo's ``DistributedQubits`` transpose-order trick).

:class:`ShardLayout` tracks where each logical qubit currently lives during
such a relabeling.  Positions ``0 … n_local−1`` are the bit positions inside
a slab (position ``p`` has stride ``2^p``); positions ``n_local … n−1`` are
the shard-index bits (position ``n_local + j`` is bit ``j`` of the shard
number).  The layout starts — and after every mixer application must end —
at the identity: logical qubit ``q`` at position ``q``.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ShardLayout",
    "resolve_n_shards",
    "resolve_n_workers",
    "sharded_state_bytes",
    "NUM_SHARDS_ENV",
]

#: Environment override for the default shard count (rounded down to a power
#: of two; the per-mixer global-qubit constraint still clamps it).
NUM_SHARDS_ENV = "REPRO_NUM_SHARDS"


class ShardLayout:
    """Tracks the logical-qubit ↔ bit-position permutation of the shard slabs.

    ``perm[pos]`` is the logical qubit currently stored at bit position
    ``pos``.  Every slab exchange that swaps index bits calls
    :meth:`swap_positions` with the same pair, so :meth:`position_of` always
    answers "where do I rotate logical qubit ``q`` right now?" and
    :meth:`assert_identity` catches any unbalanced relabeling at op
    boundaries (a forgotten restore would silently permute every result).
    """

    def __init__(self, n_qubits: int, n_local: int) -> None:
        if not 0 < n_local <= n_qubits:
            raise ValueError(
                f"n_local must be in (0, {n_qubits}], got {n_local}")
        self.n_qubits = int(n_qubits)
        self.n_local = int(n_local)
        self._perm = np.arange(self.n_qubits, dtype=np.int64)

    @property
    def perm(self) -> np.ndarray:
        """``perm[pos] -> logical qubit`` (a copy; the layout owns its state)."""
        return self._perm.copy()

    def position_of(self, qubit: int) -> int:
        """Current bit position of logical ``qubit``."""
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit {qubit} out of range for n={self.n_qubits}")
        return int(np.flatnonzero(self._perm == qubit)[0])

    def qubit_at(self, pos: int) -> int:
        """Logical qubit currently stored at bit position ``pos``."""
        return int(self._perm[pos])

    def is_local(self, qubit: int) -> bool:
        """Whether logical ``qubit`` currently lives on a local bit position."""
        return self.position_of(qubit) < self.n_local

    def swap_positions(self, pos_a: int, pos_b: int) -> None:
        """Record that the slab exchange swapped the bits at two positions."""
        if not (0 <= pos_a < self.n_qubits and 0 <= pos_b < self.n_qubits):
            raise ValueError(
                f"positions ({pos_a}, {pos_b}) out of range for n={self.n_qubits}")
        self._perm[pos_a], self._perm[pos_b] = (self._perm[pos_b],
                                                self._perm[pos_a])

    def is_identity(self) -> bool:
        """Whether every logical qubit sits at its canonical position."""
        return bool(np.array_equal(self._perm,
                                   np.arange(self.n_qubits, dtype=np.int64)))

    def assert_identity(self) -> None:
        """Raise if a relabeling was not undone (op-boundary invariant)."""
        if not self.is_identity():
            raise RuntimeError(
                "shard layout left in a permuted state: "
                f"perm={self._perm.tolist()} (unbalanced slab exchange)")


def _pow2_floor(value: int) -> int:
    """Largest power of two ≤ ``value`` (1 for values below 2)."""
    if value < 2:
        return 1
    return 1 << (int(value).bit_length() - 1)


def resolve_n_shards(n_qubits: int | None = None,
                     n_shards: int | None = None, *,
                     max_global: int | None = None) -> int:
    """Resolve the shard count ``K = 2^g``.

    Precedence: an explicit ``n_shards=`` argument (validated strictly — a
    power of two within the mixer's global-qubit budget, or ``ValueError``),
    then the :data:`NUM_SHARDS_ENV` environment override, then the nearest
    power of two ≤ the machine's core count.  Env/auto values are *clamped*
    to ``2^max_global`` rather than rejected: they are deployment knobs, and
    a small problem on a big machine should quietly use fewer shards.
    """
    if max_global is None and n_qubits is not None:
        max_global = n_qubits
    if n_shards is not None:
        k = int(n_shards)
        if k <= 0 or k & (k - 1):
            raise ValueError(
                f"n_shards must be a positive power of two, got {n_shards}")
        g = k.bit_length() - 1
        if max_global is not None and g > max(0, max_global):
            raise ValueError(
                f"n_shards={k} needs {g} global qubits but n_qubits="
                f"{n_qubits} supports at most {max(0, max_global)} "
                "for this mixer")
        return k
    k = 0
    raw = os.environ.get(NUM_SHARDS_ENV, "").strip()
    if raw:
        try:
            k = int(raw)
        except ValueError:
            k = 0
    if k < 1:
        k = _pow2_floor(os.cpu_count() or 1)
    else:
        k = _pow2_floor(k)
    if max_global is not None:
        k = min(k, 1 << max(0, max_global))
    return max(1, k)


def resolve_n_workers(n_shards: int, n_workers: int | None = None) -> int:
    """Worker threads for the shard pool: ``min(K, REPRO_NUM_THREADS | cores)``.

    Reuses the jit tier's ``REPRO_NUM_THREADS`` parsing so one knob governs
    thread budgets across the whole compiled/parallel surface.
    """
    if n_workers is not None:
        w = int(n_workers)
        if w < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        return min(w, int(n_shards))
    from ..jit.kernels import requested_num_threads

    budget = requested_num_threads()
    if budget is None:
        budget = os.cpu_count() or 1
    return max(1, min(int(n_shards), int(budget)))


def sharded_state_bytes(n_qubits: int, itemsize: int, n_shards: int) -> int:
    """Per-shard resident bytes: the largest slab plus exchange staging.

    This is what the byte guard and serve admission compare against
    ``MAX_STATE_BYTES`` instead of the monolithic ``2^n · itemsize`` — the
    whole point of sharding the state.  The staging term covers the largest
    exchange buffer any strategy allocates: the single-bit swap moves half a
    slab at once (the full transpose stages only ``slab / K``).
    """
    slab = ((1 << n_qubits) * int(itemsize)) // max(1, int(n_shards))
    return slab + slab // 2
