"""In-process sharded ("multidevice") QAOA backend.

Splits the state into ``2^g`` global-qubit slabs inside one process — a
persistent thread pool runs the per-slab kernels of a configurable inner
provider, and mixer sweeps touching a global qubit become coalesced
pairwise slab swaps.  See :mod:`repro.fur.sharded.qaoa_simulator`.
"""

from __future__ import annotations

from .layout import (
    NUM_SHARDS_ENV,
    ShardLayout,
    resolve_n_shards,
    resolve_n_workers,
    sharded_state_bytes,
)
from .qaoa_simulator import (
    QAOAFURXSimulatorSharded,
    QAOAFURXYCompleteSimulatorSharded,
    QAOAFURXYRingSimulatorSharded,
    ShardedStateVector,
)

__all__ = [
    "NUM_SHARDS_ENV",
    "ShardLayout",
    "ShardedStateVector",
    "QAOAFURXSimulatorSharded",
    "QAOAFURXYRingSimulatorSharded",
    "QAOAFURXYCompleteSimulatorSharded",
    "resolve_n_shards",
    "resolve_n_workers",
    "sharded_state_bytes",
    "shard_report",
]


def shard_report() -> str:
    """One-line runtime summary for ``registry.describe()``.

    Reports the shard count and worker budget the backend would pick on
    this machine with no per-simulator overrides, and which inner kernel
    family ``inner="auto"`` resolves to.
    """
    shards = resolve_n_shards()
    workers = resolve_n_workers(shards)
    from .inner import resolve_inner

    return f"shards={shards} workers={workers} inner={resolve_inner().name}"
