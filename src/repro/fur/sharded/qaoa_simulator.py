"""In-process sharded QAOA simulators: global/local qubit slabs, one process.

The ``(B, 2^n)`` state block is split into ``K = 2^g`` contiguous shard
slabs along the top ``g`` index bits (the *global* qubits), mirroring the
per-rank slicing of :mod:`repro.fur.mpi` — but every slab lives in this
process, owned by a worker of a persistent thread pool.  The division of
labor:

* **local ops** (phase sweeps, rotations of qubits ``< n − g``) dispatch an
  existing kernel family per shard — the configurable *inner provider* of
  :mod:`repro.fur.sharded.inner` (``jit`` when its compiled path is live,
  else the blocked ``c`` kernels) — with all shards running concurrently on
  the pool;
* **global ops** relabel the global qubit local first: a transposition
  exchanges index bits between the shard axis and local positions via
  pairwise *slab swaps* (NumPy copies instead of messages), the rotation
  runs on the now-local bit, and the inverse transposition restores the
  canonical order.  :class:`~repro.fur.sharded.layout.ShardLayout` tracks
  the permutation; each exchange is coalesced across the whole batch (one
  swap per shard pair per transposition, batch-size-independent — exactly
  the shape the ``CoalesceExchanges`` rewrite models), with message counts
  and byte volume recorded into the engine's shard telemetry.

The X mixer uses the Alltoall-style full transpose of Algorithm 4 (all
``g`` global qubits relabeled in one exchange, rotated, restored); the XY
mixers swap one global *bit* at a time to a free local position per edge
that needs it (the cuStateVec-style index-bit swap), preserving the exact
reference edge order — XY edge rotations do not commute.

Because a shard slab is just a smaller state block, results are
bitwise-invariant under the shard count whenever the inner kernels'
arithmetic is position-independent (the ``c`` inner); expectations reduce
over a *fixed* segment grid in float64 so the reduction tree does not
depend on ``K`` either.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..base import QAOAFastSimulatorBase, batch_block_rows, validate_angles
from ..cvect.kernels import (
    DEFAULT_BLOCK_SIZE,
    KernelWorkspace,
    apply_su2_batch_blocked,
)
from ..diagonal import build_phase_table, precompute_cost_diagonal_slice
from ..python.furx import su2_x_rotation_batch
from ..python.furxy import apply_xy_su2_batch, complete_edges, ring_edges
from .inner import InnerProvider, resolve_inner
from .layout import ShardLayout, resolve_n_shards, resolve_n_workers, sharded_state_bytes

__all__ = [
    "ShardedStateVector",
    "QAOAFURXSimulatorSharded",
    "QAOAFURXYRingSimulatorSharded",
    "QAOAFURXYCompleteSimulatorSharded",
]

#: Fixed chunk (amplitudes) for the expectation reduction inside a segment.
_EXPECTATION_CHUNK: int = 1 << 16

#: Segment-grid exponent floor for expectation partials: the grid is
#: ``2^max(g, min(n, 8))`` segments regardless of the actual shard count, so
#: the float64 reduction tree — and therefore the result bits — do not
#: change between 1, 2, 4 and 8 shards.
_EXPECTATION_SEGMENT_QUBITS: int = 8


@dataclass
class ShardedStateVector:
    """The per-shard slabs of an evolved state (the backend *result* object)."""

    slices: list[np.ndarray]
    n_qubits: int

    @property
    def n_shards(self) -> int:
        """Number of shards holding slabs."""
        return len(self.slices)

    def gather(self) -> np.ndarray:
        """Concatenate all slabs into the full state vector."""
        return np.concatenate(self.slices)


class _ShardedFURSimulatorBase(QAOAFastSimulatorBase):
    """Shared sharded machinery; subclasses supply the mixer sweep.

    Implements the engine's :class:`~repro.fur.engine.KernelProvider`
    protocol over *lists of shard slabs* (``K`` arrays of shape
    ``(rows, 2^(n−g))``), like the MPI families — so fused batching,
    plan rewrites, serve micro-batching and the parity harness apply
    unchanged.
    """

    backend_name = "sharded"
    supports_fused_engine = True
    supports_staged_phase = True
    supports_coalesced_exchange = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 n_shards: int | None = None, n_workers: int | None = None,
                 inner: str = "auto", block_size: int = DEFAULT_BLOCK_SIZE,
                 precision: str = "double", optimize: str = "default") -> None:
        if n_qubits <= 0:
            raise ValueError(f"n_qubits must be positive, got {n_qubits}")
        self._n_shards = resolve_n_shards(
            n_qubits, n_shards, max_global=self._max_global_qubits(n_qubits))
        self._g_global = self._n_shards.bit_length() - 1
        self._n_workers = resolve_n_workers(self._n_shards, n_workers)
        self._inner: InnerProvider = resolve_inner(inner)
        if self._inner.name == "jit":
            # instance-level: the rewrite cost model prices jit's fused
            # kernels at ~2 streamed passes per mixer instead of one per qubit
            self.supports_single_pass = True
        self._block_size = int(block_size)
        self._pool: ThreadPoolExecutor | None = None
        self._swap_buf: np.ndarray | None = None
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)

    # -- construction --------------------------------------------------------
    @staticmethod
    def _max_global_qubits(n_qubits: int) -> int:
        """Largest ``g`` this mixer's relabeling strategy supports."""
        raise NotImplementedError

    @property
    def n_shards(self) -> int:
        """Number of shard slabs ``K = 2^g`` the state is split into."""
        return self._n_shards

    @property
    def n_shard_workers(self) -> int:
        """Worker threads of the persistent shard pool (1 = inline)."""
        return self._n_workers

    @property
    def n_global_qubits(self) -> int:
        """Number of global (shard-index) qubits ``g``."""
        return self._g_global

    @property
    def n_local_qubits(self) -> int:
        """Number of local (per-slab) qubits ``n − g``."""
        return self._n_qubits - self._g_global

    @property
    def local_states(self) -> int:
        """Amplitudes per shard slab."""
        return 1 << self.n_local_qubits

    @property
    def inner_name(self) -> str:
        """Resolved inner kernel provider (``jit``/``c``/``python``)."""
        return self._inner.name

    def _guarded_state_bytes(self) -> int:
        """Per-shard accounting: largest slab plus exchange staging.

        This — not the monolithic ``2^n`` array — is what the byte guard
        compares against ``MAX_STATE_BYTES``, so sharding admits problem
        sizes the single-array backends refuse.
        """
        return sharded_state_bytes(self._n_qubits,
                                   self._precision.complex_itemsize,
                                   self._n_shards)

    def _precompute_diagonal(self, terms) -> np.ndarray:
        """Shard-local diagonal precomputation, then a host mirror."""
        s = self.local_states
        self._cost_slices = [
            precompute_cost_diagonal_slice(terms, self._n_qubits,
                                           r * s, (r + 1) * s)
            for r in range(self._n_shards)
        ]
        return np.concatenate(self._cost_slices)

    def _ingest_costs(self, costs):
        host = super()._ingest_costs(costs)
        full = (host.decompress() if hasattr(host, "decompress")
                else np.asarray(host, dtype=np.float64))
        s = self.local_states
        self._cost_slices = [full[r * s:(r + 1) * s]
                             for r in range(self._n_shards)]
        return host

    def _post_init(self) -> None:
        s = self.local_states
        self._workspaces = [
            KernelWorkspace(s, self._block_size,
                            dtype=self._precision.complex_dtype)
            for _ in range(self._n_shards)
        ]
        if self._precision.is_double:
            self._phase_cost_slices = self._cost_slices
        else:
            self._phase_cost_slices = [
                np.ascontiguousarray(c, dtype=self._precision.real_dtype)
                for c in self._cost_slices
            ]
        self._layout = ShardLayout(self._n_qubits, self.n_local_qubits)
        spent = self._inner.warm(self._precision.complex_dtype,
                                 self.n_local_qubits)
        if spent:
            self.engine.stats.kernel_compile_time_s += spent

    # -- worker pool ---------------------------------------------------------
    def _map_shards(self, fn: Callable[[int], None]) -> None:
        """Run a per-shard callable on the pool; record busy/wall telemetry."""
        k = self._n_shards
        busy = [0.0] * k
        wall0 = time.perf_counter()

        def timed(s: int) -> None:
            t0 = time.perf_counter()
            try:
                fn(s)
            finally:
                busy[s] = time.perf_counter() - t0

        pool = self._ensure_pool()
        if pool is None:
            for s in range(k):
                timed(s)
        else:
            list(pool.map(timed, range(k)))
        self.engine.record_shard_dispatch(busy, time.perf_counter() - wall0)

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        if self._n_workers <= 1 or self._n_shards <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._n_workers,
                thread_name_prefix=f"repro-shard-{id(self):x}")
        return self._pool

    # -- slab exchanges ------------------------------------------------------
    def _ensure_swap_buf(self, rows: int, width: int,
                         dtype: np.dtype) -> np.ndarray:
        buf = self._swap_buf
        if buf is None or buf.shape[0] < rows * width or buf.dtype != dtype:
            buf = np.empty(rows * width, dtype=dtype)
            self._swap_buf = buf
        return buf

    def _swap_views(self, a: np.ndarray, b: np.ndarray) -> int:
        """Swap two equal-shaped (possibly strided) slab views via staging."""
        buf = self._ensure_swap_buf(1, a.size, a.dtype)[: a.size].reshape(a.shape)
        np.copyto(buf, a)
        a[...] = b
        b[...] = buf
        return a.nbytes

    def _transpose_global_local(self, block: list[np.ndarray],
                                coalesce: bool) -> None:
        """Alltoall-style transposition of all ``g`` global qubits.

        Exchanges the shard-index bits with the top ``g`` local positions:
        ``new[d][:, s·chunk + low] = old[s][:, d·chunk + low]`` with
        ``chunk = local_states / K`` — a pairwise slab *swap* for every
        unordered shard pair (diagonal slabs never move).  ``coalesce``
        swaps whole ``(rows, chunk)`` slabs (``K(K−1)`` messages regardless
        of the batch size); the per-row path models the uncoalesced
        exchange (``rows · K(K−1)`` messages, identical bytes and results).
        """
        k = self._n_shards
        if k <= 1:
            return
        rows = block[0].shape[0]
        chunk = self.local_states // k
        messages = 0
        moved = 0
        if coalesce:
            for r in range(k):
                for partner in range(r + 1, k):
                    a = block[r][:, partner * chunk:(partner + 1) * chunk]
                    b = block[partner][:, r * chunk:(r + 1) * chunk]
                    moved += 2 * self._swap_views(a, b)
                    messages += 2
        else:
            for i in range(rows):
                for r in range(k):
                    for partner in range(r + 1, k):
                        a = block[r][i, partner * chunk:(partner + 1) * chunk]
                        b = block[partner][i, r * chunk:(r + 1) * chunk]
                        moved += 2 * self._swap_views(a, b)
                        messages += 2
        n_local = self.n_local_qubits
        for j in range(self._g_global):
            self._layout.swap_positions(n_local - self._g_global + j,
                                        n_local + j)
        self.engine.record_shard_exchange(messages, moved)

    def _exchange_global_bit(self, block: list[np.ndarray], global_bit: int,
                             local_pos: int, coalesce: bool) -> None:
        """Swap one shard-index bit with one local bit position.

        The index-bit swap of the cuStateVec strategy, generalized to an
        arbitrary target position: shard ``r`` (bit value ``gv``) trades its
        ``local_pos``-bit ``1 − gv`` sub-block with the partner shard
        differing in ``global_bit`` — amplitudes whose global and local bits
        disagree are exactly the ones stored on the wrong shard.
        """
        k = self._n_shards
        rows = block[0].shape[0]
        inner_w = 1 << local_pos
        outer = self.local_states // (2 * inner_w)
        messages = 0
        moved = 0
        for r in range(k):
            partner = r ^ (1 << global_bit)
            if partner < r:
                continue
            gv = (r >> global_bit) & 1
            va = block[r].reshape(rows, outer, 2, inner_w)[:, :, 1 - gv, :]
            vb = block[partner].reshape(rows, outer, 2, inner_w)[:, :, gv, :]
            if coalesce:
                moved += 2 * self._swap_views(va, vb)
                messages += 2
            else:
                for i in range(rows):
                    moved += 2 * self._swap_views(va[i], vb[i])
                    messages += 2
        self._layout.swap_positions(local_pos,
                                    self.n_local_qubits + global_bit)
        self.engine.record_shard_exchange(messages, moved)

    # -- kernel-provider hooks (driven by repro.fur.engine) ------------------
    def _batch_rows(self, remaining: int, memory_budget: float | None) -> int:
        # the python inner allocates a per-slab ping-pong scratch; the jit/c
        # inners run in place through the workspaces
        blocks = 2 if self._inner.name == "python" else 1
        return batch_block_rows(remaining, self._n_states, memory_budget,
                                blocks=blocks,
                                itemsize=self._precision.complex_itemsize)

    def _engine_phase_tables(self) -> tuple:
        """Per-shard unique-value phase tables over the local diagonal slices."""
        tables = getattr(self, "_phase_table_slices", None)
        if tables is None:
            tables = tuple(build_phase_table(np.asarray(c, dtype=np.float64))
                           for c in self._cost_slices)
            self._phase_table_slices = tables
        return tables

    supports_batched_sv0 = True

    def _stage_block(self, sv0: np.ndarray | None,
                     rows: int) -> list[np.ndarray]:
        """Materialize one ``(rows, local_states)`` slab per shard."""
        s = self.local_states
        if sv0 is None:
            amp = 1.0 / np.sqrt(self._n_states)
            return [np.full((rows, s), amp,
                            dtype=self._precision.complex_dtype)
                    for _ in range(self._n_shards)]
        if np.ndim(sv0) == 2:
            full2 = self._validate_sv0_block(sv0, rows)
            return [np.ascontiguousarray(full2[:, r * s:(r + 1) * s])
                    for r in range(self._n_shards)]
        full = self._validate_sv0(sv0)
        return [np.repeat(full[r * s:(r + 1) * s][None, :], rows, axis=0)
                for r in range(self._n_shards)]

    def _stage_phase_block(self, gammas: np.ndarray,
                           plan: Any) -> list[np.ndarray]:
        """FoldInitialPhase staging: write ``exp(-i γ_r c)/√N`` per slab.

        The norm is the *full-state* ``1/√2^n`` (a slab is a slice of the
        global uniform superposition, not a state of its own); the
        factor·norm products are formed exactly as the split path forms
        them, so the staged slabs match it bitwise.
        """
        tables = plan.phase_tables
        gammas = np.asarray(gammas, dtype=np.float64)
        rows = gammas.shape[0]
        dtype = self._precision.complex_dtype
        norm = np.finfo(dtype).dtype.type(1.0 / np.sqrt(self._n_states))
        width = self.local_states
        block = [np.empty((rows, width), dtype=dtype)
                 for _ in range(self._n_shards)]

        def work(s: int) -> None:
            table = None if tables is None else tables[s]
            slab = block[s]
            if table is not None:
                factors = table.factors_batch(gammas, dtype=dtype)
                factors *= norm
                for r in range(rows):
                    np.take(factors[r], table.inverse, out=slab[r])
                return
            costs = self._phase_cost_slices[s]
            coeff = (-1j * gammas).astype(dtype)
            cols = max(1, _EXPECTATION_CHUNK)
            for c0 in range(0, width, cols):
                c1 = min(c0 + cols, width)
                factors = np.exp(coeff[:, None] * costs[c0:c1][None, :])
                np.multiply(factors, norm, out=slab[:, c0:c1],
                            casting="same_kind")

        self._map_shards(work)
        return block

    def _apply_phase_block(self, block: list[np.ndarray], gammas: np.ndarray,
                           plan: Any) -> None:
        """Batched shard-local phase sweep (diagonal — no exchanges)."""
        tables = plan.phase_tables

        def work(s: int) -> None:
            self._inner.phase_block(
                block[s], gammas, costs=self._phase_cost_slices[s],
                table=None if tables is None else tables[s],
                workspace=self._workspaces[s])

        self._map_shards(work)

    def _block_expectations(self, block: list[np.ndarray],
                            costs: np.ndarray) -> np.ndarray:
        """Per-schedule objective over a fixed float64 segment grid.

        Each shard reduces its segments into float64 partials (computed in
        parallel on the pool); the final tree reduction sums the fixed
        ``2^max(g, min(n, 8))`` segment axis, so the accumulation order —
        and therefore the result bits — are identical at every shard count.
        """
        rows = block[0].shape[0]
        g_seg = max(self._g_global,
                    min(self._n_qubits, _EXPECTATION_SEGMENT_QUBITS))
        n_seg = 1 << g_seg
        seg_w = self._n_states >> g_seg
        per_shard = n_seg // self._n_shards
        partials = np.empty((n_seg, rows), dtype=np.float64)

        def work(s: int) -> None:
            slab = block[s]
            for t in range(per_shard):
                seg = s * per_shard + t
                o = t * seg_w
                start = seg * seg_w
                acc = np.zeros(rows, dtype=np.float64)
                for c0 in range(0, seg_w, _EXPECTATION_CHUNK):
                    c1 = min(c0 + _EXPECTATION_CHUNK, seg_w)
                    sub = slab[:, o + c0:o + c1]
                    acc += ((sub.real ** 2 + sub.imag ** 2)
                            @ costs[start + c0:start + c1])
                partials[seg] = acc

        self._map_shards(work)
        return partials.sum(axis=0)

    def _block_results(self,
                       block: list[np.ndarray]) -> list[ShardedStateVector]:
        rows = block[0].shape[0]
        return [
            ShardedStateVector(
                slices=[np.array(block[s][i], copy=True)
                        for s in range(self._n_shards)],
                n_qubits=self._n_qubits)
            for i in range(rows)
        ]

    # -- simulation ----------------------------------------------------------
    def _apply_mixer_slabs(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, coalesce: bool) -> None:
        """One batched mixer application over the shard slabs."""
        raise NotImplementedError

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> ShardedStateVector:
        """Evolve the sharded state through ``p`` QAOA layers (looped path)."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        block = self._stage_block(sv0, 1)
        tables = self._engine_phase_tables()

        class _Plan:
            phase_tables = tables

        for gamma, beta in zip(g, b):
            self._apply_phase_block(block, np.array([float(gamma)]), _Plan)
            self._apply_mixer_slabs(block, np.array([float(beta)]),
                                    int(n_trotters), coalesce=False)
        return ShardedStateVector(slices=[slab[0] for slab in block],
                                  n_qubits=self._n_qubits)

    def _apply_mixer_block(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        del scratch
        self._apply_mixer_slabs(block, betas, n_trotters, coalesce=False)

    def _apply_mixer_block_coalesced(self, block: list[np.ndarray],
                                     betas: np.ndarray, n_trotters: int,
                                     scratch: Any) -> None:
        """Mixer sweep with batch-coalesced slab exchanges (CoalesceExchanges)."""
        del scratch
        self._apply_mixer_slabs(block, betas, n_trotters, coalesce=True)

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: ShardedStateVector, *,
                        gather: bool = True,
                        **kwargs: Any) -> np.ndarray | list[np.ndarray]:
        """Full state vector (default) or the raw per-shard slabs."""
        if gather:
            return result.gather()
        return result.slices

    def get_probabilities(self, result: ShardedStateVector,
                          preserve_state: bool = True, *,
                          gather: bool = True,
                          **kwargs: Any) -> np.ndarray | list[np.ndarray]:
        """Measurement probabilities (gathered by default; always float64)."""
        probs = [(np.abs(s) ** 2).astype(np.float64, copy=False)
                 for s in result.slices]
        if gather:
            return np.concatenate(probs)
        return probs


class QAOAFURXSimulatorSharded(_ShardedFURSimulatorBase):
    """Sharded transverse-field mixer: Algorithm-4 style full transposes."""

    mixer_name = "x"
    supports_fused_phase_mixer = True
    mixer_self_commutes = True

    @staticmethod
    def _max_global_qubits(n_qubits: int) -> int:
        # the full transpose needs chunk = 2^(n−g)/2^g ≥ 1, i.e. 2g ≤ n
        return n_qubits // 2

    def _apply_mixer_slabs(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, coalesce: bool,
                           phase: tuple[np.ndarray, Any] | None = None) -> None:
        """One batched X sweep: local inner sweep, then the global step.

        ``n_trotters`` is ignored (X-mixer factors commute exactly);
        ``phase=(gammas, tables)`` rides the per-shard dispatch of the local
        sweep (the FusePhaseIntoMixer path — one pool dispatch instead of
        two, each slab staying cache-hot between phase and first rotation).
        """
        del n_trotters
        a_rows, b_rows = su2_x_rotation_batch(betas)
        n_local = self.n_local_qubits

        def work(s: int) -> None:
            if phase is not None:
                gammas, tables = phase
                self._inner.furx_phase_sweep(
                    block[s], gammas, betas, a_rows, b_rows, n_local=n_local,
                    costs=self._phase_cost_slices[s],
                    table=None if tables is None else tables[s],
                    workspace=self._workspaces[s])
            else:
                self._inner.furx_sweep(block[s], betas, a_rows, b_rows,
                                       n_local=n_local,
                                       workspace=self._workspaces[s])

        self._map_shards(work)
        if self._g_global == 0:
            return
        # relabel all g global qubits local, rotate them, relabel back
        g = self._g_global
        layout = self._layout
        self._transpose_global_local(block, coalesce)
        positions = [layout.position_of(n_local + j) for j in range(g)]

        def rotate(s: int) -> None:
            for pos in positions:
                apply_su2_batch_blocked(block[s], a_rows, b_rows, pos,
                                        self._workspaces[s])

        self._map_shards(rotate)
        self._transpose_global_local(block, coalesce)
        layout.assert_identity()

    def _apply_phase_mixer_block(self, block: list[np.ndarray],
                                 gammas: np.ndarray, betas: np.ndarray,
                                 op: Any, scratch: Any, plan: Any) -> None:
        """FusedPhaseMixerOp kernel: the phase rides the local sweep."""
        del scratch
        self._apply_mixer_slabs(block, betas, 1, coalesce=op.coalesce,
                                phase=(gammas, plan.phase_tables))


class _ShardedXYBase(_ShardedFURSimulatorBase):
    """Shared XY machinery: per-edge sweeps with index-bit relabeling.

    The edge plan is computed once: consecutive all-local edges batch into
    one per-shard dispatch; an edge with a global endpoint swaps that
    index bit to a free local position, rotates there, and swaps back —
    preserving the exact reference edge order (XY rotations on overlapping
    edges do not commute, so reordering would change results).
    """

    @staticmethod
    def _max_global_qubits(n_qubits: int) -> int:
        # a both-global edge needs two distinct free local positions
        return max(0, n_qubits - 2)

    def _mixer_edges(self) -> list[tuple[int, int]]:
        raise NotImplementedError

    def _post_init(self) -> None:
        super()._post_init()
        self._edge_steps = self._plan_edge_steps()

    def _plan_edge_steps(self) -> list[tuple]:
        """Compile the edge list into local runs and relabeled single edges.

        Returns steps of two shapes: ``("local", [(pi, pj), …])`` — a run of
        consecutive edges whose endpoints are all local, applied in one
        per-shard dispatch — and ``("swap", [(global_bit, target_pos), …],
        (pi, pj))`` — the index-bit swaps that localize the edge, the
        rotation positions, and (implicitly, reversed) the restoring swaps.
        """
        n_local = self.n_local_qubits
        steps: list[tuple] = []
        run: list[tuple[int, int]] = []
        for (qi, qj) in self._mixer_edges():
            if qi < n_local and qj < n_local:
                run.append((qi, qj))
                continue
            if run:
                steps.append(("local", run))
                run = []
            if qi < n_local or qj < n_local:
                loc, glob = (qi, qj) if qi < n_local else (qj, qi)
                target = n_local - 1 if loc != n_local - 1 else n_local - 2
                swaps = [(glob - n_local, target)]
                pos = ((loc, target) if qi < n_local else (target, loc))
            else:
                swaps = [(qi - n_local, n_local - 2),
                         (qj - n_local, n_local - 1)]
                pos = (n_local - 2, n_local - 1)
            steps.append(("swap", swaps, pos))
        if run:
            steps.append(("local", run))
        return steps

    def _apply_mixer_slabs(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, coalesce: bool) -> None:
        rows = block[0].shape[0]
        betas_t = np.broadcast_to(
            np.asarray(betas, dtype=np.float64) / n_trotters, (rows,))
        # the reference coefficient recipe of _validate_furxy_batch: float64
        # trig, complex128 coefficients, cast to state dtype at application
        a = np.cos(betas_t).astype(np.complex128)
        b = (-1j * np.sin(betas_t)).astype(np.complex128)
        for _ in range(n_trotters):
            for step in self._edge_steps:
                if step[0] == "local":
                    pairs = step[1]

                    def work(s: int, pairs=pairs) -> None:
                        slab = block[s]
                        for (pi, pj) in pairs:
                            apply_xy_su2_batch(slab, a, b, pi, pj)

                    self._map_shards(work)
                    continue
                _, swaps, (pi, pj) = step
                for global_bit, target in swaps:
                    self._exchange_global_bit(block, global_bit, target,
                                              coalesce)

                def rotate(s: int) -> None:
                    apply_xy_su2_batch(block[s], a, b, pi, pj)

                self._map_shards(rotate)
                for global_bit, target in reversed(swaps):
                    self._exchange_global_bit(block, global_bit, target,
                                              coalesce)
            self._layout.assert_identity()


class QAOAFURXYRingSimulatorSharded(_ShardedXYBase):
    """Sharded ring XY mixer (Hamming-weight preserving)."""

    mixer_name = "xyring"

    def _mixer_edges(self) -> list[tuple[int, int]]:
        return ring_edges(self._n_qubits)


class QAOAFURXYCompleteSimulatorSharded(_ShardedXYBase):
    """Sharded complete-graph XY mixer (Hamming-weight preserving)."""

    mixer_name = "xycomplete"

    def _mixer_edges(self) -> list[tuple[int, int]]:
        return complete_edges(self._n_qubits)
