"""Plan-rewrite optimizer passes for the execution engine.

The declarative :class:`ExecutionPlan` of :mod:`repro.fur.engine` makes the
op stream itself a datum, so the memory-traffic optimizations the paper's
profile points at can be expressed as *rewrites* over the op list instead of
special cases inside each backend's kernels:

* :class:`FusePhaseIntoMixer` merges each layer's :class:`PhaseOp` into the
  following :class:`MixerOp`, emitting a :class:`FusedPhaseMixerOp` — the
  phase multiply then rides the first mixer sweep of the layer (one fewer
  full read-modify-write of the state block per layer) through the
  provider's optional ``_apply_phase_mixer_block`` kernel;
* :class:`CoalesceExchanges` marks mixer ops so the distributed Alltoall
  strategy exchanges the whole ``(rows, local_states)`` block at once — one
  collective per exchange instead of one per schedule row, making the
  message count batch-size independent (what the index-bit-swap family
  already does natively);
* :class:`EliminateNoOps` drops zero-angle phase/mixer ops (``exp(0) = I``
  exactly): an angle-dependent pass that runs per batch, after the
  structural passes, and may demote a fused op back to its surviving half.

Every pass is *capability-gated* on the concrete simulator: a backend that
does not implement the fused kernel (``supports_fused_phase_mixer``) or the
coalesced exchange (``supports_coalesced_exchange``) keeps the split ops and
stays numerically pinned by the same parity harness as everyone else.
Whether the pipeline runs at all is the ``optimize="default"|"none"`` knob
carried by simulators, plans and the plan-cache key.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

__all__ = [
    "PhaseOp",
    "MixerOp",
    "FusedPhaseMixerOp",
    "ExpectationOp",
    "PlanOp",
    "OPTIMIZE_LEVELS",
    "resolve_optimize",
    "RewriteReport",
    "RewritePass",
    "FusePhaseIntoMixer",
    "CoalesceExchanges",
    "EliminateNoOps",
    "DEFAULT_PASSES",
    "run_passes",
]

#: Accepted values of the ``optimize`` knob (simulator constructor, batched
#: entry points and the plan-cache key).
OPTIMIZE_LEVELS = ("default", "none")


def resolve_optimize(optimize: str) -> str:
    """Validate an ``optimize`` level name."""
    if optimize not in OPTIMIZE_LEVELS:
        raise ValueError(
            f"unknown optimize level {optimize!r}; expected one of {OPTIMIZE_LEVELS}"
        )
    return optimize


# ---------------------------------------------------------------------------
# Declarative layer ops (the vocabulary plans are written in).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PhaseOp:
    """Apply ``exp(-i γ_l C)`` — one phase sweep of layer ``layer``."""

    layer: int


@dataclass(frozen=True)
class MixerOp:
    """Apply ``exp(-i β_l M)`` — one mixer sweep of layer ``layer``.

    ``coalesce`` asks a distributed provider to exchange the whole batch
    block per global-qubit step instead of one row at a time (set by
    :class:`CoalesceExchanges`; meaningless for single-address-space
    backends and always ``False`` there).
    """

    layer: int
    n_trotters: int = 1
    coalesce: bool = False


@dataclass(frozen=True)
class FusedPhaseMixerOp:
    """Apply ``exp(-i β_l M) · exp(-i γ_l C)`` in one fused sweep.

    Emitted by :class:`FusePhaseIntoMixer`; executed through the provider's
    ``_apply_phase_mixer_block`` kernel, which folds the phase multiply into
    the first mixer pass over the block.
    """

    layer: int
    n_trotters: int = 1
    coalesce: bool = False


@dataclass(frozen=True)
class ExpectationOp:
    """Reduce every block row to ``Σ_x c[x] |ψ_x|²`` (float64 accumulation)."""


#: Union of the op types a plan may contain.
PlanOp = PhaseOp | MixerOp | FusedPhaseMixerOp | ExpectationOp


# ---------------------------------------------------------------------------
# The pass framework.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RewriteReport:
    """What one pass did to one op list (feeds ``EngineStats.rewrites``)."""

    pass_name: str
    ops_before: int
    ops_after: int
    rewrites: int


class RewritePass(abc.ABC):
    """One rewrite over an op tuple.

    ``needs_angles`` splits the pipeline into the *structural* passes (run
    once at plan-compile time, results cached inside the plan) and the
    *angle-dependent* passes (run per batch, because the angles only arrive
    at execution time).
    """

    #: stable name used in reports, stats and ``BackendSpec.plan_rewrites``
    name: str = "rewrite"
    #: whether the pass needs the batch's angle columns to decide anything
    needs_angles: bool = False

    @abc.abstractmethod
    def run(self, ops: tuple[PlanOp, ...], simulator: Any, *,
            gammas: np.ndarray | None = None,
            betas: np.ndarray | None = None) -> tuple[tuple[PlanOp, ...], int]:
        """Rewrite ``ops``; returns the new tuple and the rewrite count."""


class FusePhaseIntoMixer(RewritePass):
    """Merge each layer's phase sweep into its mixer sweep.

    ``PhaseOp(l)`` immediately followed by ``MixerOp(l)`` becomes one
    :class:`FusedPhaseMixerOp` (preserving ``n_trotters`` and a previously
    set ``coalesce`` flag).  Gated on the provider's
    ``supports_fused_phase_mixer`` attribute — mixer families without the
    fused kernel (e.g. the XY mixers) keep the split ops.
    """

    name = "fuse-phase-mixer"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_fused_phase_mixer", False):
            return ops, 0
        out: list[PlanOp] = []
        rewrites = 0
        i = 0
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if (isinstance(op, PhaseOp) and isinstance(nxt, MixerOp)
                    and nxt.layer == op.layer):
                out.append(FusedPhaseMixerOp(layer=op.layer,
                                             n_trotters=nxt.n_trotters,
                                             coalesce=nxt.coalesce))
                rewrites += 1
                i += 2
            else:
                out.append(op)
                i += 1
        return tuple(out), rewrites


class CoalesceExchanges(RewritePass):
    """Mark every mixer op for block-wide global-qubit exchanges.

    Rewrites ``coalesce=False`` mixer and fused ops to ``coalesce=True`` so
    the Alltoall-strategy provider performs one collective over the whole
    ``(rows, local_states)`` block per exchange — the message count then no
    longer scales with the batch size.  Gated on
    ``supports_coalesced_exchange`` (only the Alltoall family sets it; the
    index-bit-swap family already exchanges whole blocks natively).
    """

    name = "coalesce-exchanges"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_coalesced_exchange", False):
            return ops, 0
        out: list[PlanOp] = []
        rewrites = 0
        for op in ops:
            if isinstance(op, (MixerOp, FusedPhaseMixerOp)) and not op.coalesce:
                out.append(replace(op, coalesce=True))
                rewrites += 1
            else:
                out.append(op)
        return tuple(out), rewrites


class EliminateNoOps(RewritePass):
    """Drop phase/mixer ops whose angle column is exactly zero.

    ``exp(-i·0·C)`` and ``exp(-i·0·M)`` are the identity *exactly* (for all
    mixer families — no Trotter error at zero angle), so a layer whose γ or
    β column is all-zero across the batch can skip the corresponding sweep.
    A fused op with one zero half is demoted back to its surviving half.
    Runs per batch (``needs_angles``), after the structural passes.
    """

    name = "eliminate-noops"
    needs_angles = True

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if gammas is None or betas is None:
            raise ValueError("EliminateNoOps needs the batch angle columns")
        zero_g = ~np.any(gammas != 0.0, axis=0)
        zero_b = ~np.any(betas != 0.0, axis=0)
        out: list[PlanOp] = []
        rewrites = 0
        for op in ops:
            if isinstance(op, PhaseOp) and zero_g[op.layer]:
                rewrites += 1
            elif isinstance(op, MixerOp) and zero_b[op.layer]:
                rewrites += 1
            elif isinstance(op, FusedPhaseMixerOp) and (zero_g[op.layer]
                                                        or zero_b[op.layer]):
                rewrites += 1
                if not zero_b[op.layer]:
                    out.append(MixerOp(layer=op.layer, n_trotters=op.n_trotters,
                                       coalesce=op.coalesce))
                elif not zero_g[op.layer]:
                    out.append(PhaseOp(layer=op.layer))
                # both halves zero: the whole layer is the identity
            else:
                out.append(op)
        return tuple(out), rewrites


#: The default pipeline, in application order.  Structural passes first
#: (cached inside compiled plans), then the angle-dependent specialization
#: (re-run per batch).
DEFAULT_PASSES: tuple[RewritePass, ...] = (
    FusePhaseIntoMixer(),
    CoalesceExchanges(),
    EliminateNoOps(),
)


def run_passes(ops: tuple[PlanOp, ...], simulator: Any, *,
               gammas: np.ndarray | None = None,
               betas: np.ndarray | None = None,
               passes: tuple[RewritePass, ...] = DEFAULT_PASSES,
               stage: str = "compile") -> tuple[tuple[PlanOp, ...],
                                                tuple[RewriteReport, ...]]:
    """Run one stage of the pipeline over an op tuple.

    ``stage="compile"`` runs the structural (angle-independent) passes;
    ``stage="execute"`` runs the angle-dependent ones against the batch's
    ``(B, p)`` angle arrays.  Returns the rewritten tuple plus one
    :class:`RewriteReport` per pass that ran.
    """
    if stage not in ("compile", "execute"):
        raise ValueError(f"unknown rewrite stage {stage!r}")
    reports: list[RewriteReport] = []
    for rewrite in passes:
        if rewrite.needs_angles != (stage == "execute"):
            continue
        before = len(ops)
        ops, rewrites = rewrite.run(ops, simulator, gammas=gammas, betas=betas)
        reports.append(RewriteReport(pass_name=rewrite.name, ops_before=before,
                                     ops_after=len(ops), rewrites=rewrites))
    return ops, tuple(reports)
