"""Plan-rewrite optimizer passes for the execution engine.

The declarative :class:`ExecutionPlan` of :mod:`repro.fur.engine` makes the
op stream itself a datum, so the memory-traffic optimizations the paper's
profile points at can be expressed as *rewrites* over the op list instead of
special cases inside each backend's kernels:

* :class:`FusePhaseIntoMixer` merges each layer's :class:`PhaseOp` into the
  following :class:`MixerOp`, emitting a :class:`FusedPhaseMixerOp` — the
  phase multiply then rides the first mixer sweep of the layer (one fewer
  full read-modify-write of the state block per layer) through the
  provider's optional ``_apply_phase_mixer_block`` kernel;
* :class:`CoalesceExchanges` marks mixer ops so the distributed Alltoall
  strategy exchanges the whole ``(rows, local_states)`` block at once — one
  collective per exchange instead of one per schedule row, making the
  message count batch-size independent (what the index-bit-swap family
  already does natively);
* :class:`FoldInitialPhase` constant-folds layer 0's phase into the ``|+>``
  block staging: instead of writing the uniform superposition and then
  re-reading it for the first phase sweep, the provider writes
  ``exp(-i γ_0 c[x]) / sqrt(N)`` directly (``_stage_phase_block``) — the
  first phase op costs nothing beyond the staging write it replaces;
* :class:`FuseMixerIntoExpectation` folds the final mixer sweep into the
  expectation reduction (:class:`FusedMixerExpectationOp`): the provider's
  ``_apply_mixer_expectation_block`` kernel skips the last copy-back of the
  mixer's ping-pong buffer and reduces ``Σ c|ψ|²`` straight out of it;
* :class:`EliminateNoOps` drops zero-angle phase/mixer ops (``exp(0) = I``
  exactly): an angle-dependent pass that runs per batch, after the
  structural passes, and may demote a fused op back to its surviving half;
* :class:`ReorderCommuting` exploits commutation identities the elimination
  pass exposes: diagonal ops immediately before the expectation reduction
  are dropped (they cannot change ``|ψ|²``), adjacent phase sweeps merge
  into one with summed angles, and — for self-commuting mixers like X —
  adjacent mixer sweeps merge likewise.

The *order* of the structural passes is not hard-coded: at plan-compile time
the engine scores every permutation with the memory-traffic cost model in
:mod:`repro.fur.costmodel` (backed by :class:`repro.parallel.perfmodel.
PerformanceModel`) and applies the cheapest one, with the declared order
winning ties.

Every pass is *capability-gated* on the concrete simulator: a backend that
does not implement the fused kernel (``supports_fused_phase_mixer``), the
coalesced exchange (``supports_coalesced_exchange``), phased staging
(``supports_staged_phase``) or the mixer/expectation fusion
(``supports_fused_mixer_expectation``) keeps the split ops and stays
numerically pinned by the same parity harness as everyone else.  Whether the
pipeline runs at all is the ``optimize="default"|"none"`` knob carried by
simulators, plans and the plan-cache key.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

__all__ = [
    "PhaseOp",
    "InitialPhaseOp",
    "MergedPhaseOp",
    "MixerOp",
    "MergedMixerOp",
    "FusedPhaseMixerOp",
    "FusedMixerExpectationOp",
    "ExpectationOp",
    "PlanOp",
    "OPTIMIZE_LEVELS",
    "resolve_optimize",
    "RewriteReport",
    "RewritePass",
    "FusePhaseIntoMixer",
    "CoalesceExchanges",
    "FoldInitialPhase",
    "FuseMixerIntoExpectation",
    "EliminateNoOps",
    "ReorderCommuting",
    "STRUCTURAL_PASSES",
    "DEFAULT_PASSES",
    "run_passes",
]

#: Accepted values of the ``optimize`` knob (simulator constructor, batched
#: entry points and the plan-cache key).
OPTIMIZE_LEVELS = ("default", "none")


def resolve_optimize(optimize: str) -> str:
    """Validate an ``optimize`` level name."""
    if optimize not in OPTIMIZE_LEVELS:
        raise ValueError(
            f"unknown optimize level {optimize!r}; expected one of {OPTIMIZE_LEVELS}"
        )
    return optimize


# ---------------------------------------------------------------------------
# Declarative layer ops (the vocabulary plans are written in).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PhaseOp:
    """Apply ``exp(-i γ_l C)`` — one phase sweep of layer ``layer``."""

    layer: int


@dataclass(frozen=True)
class InitialPhaseOp:
    """Layer-``layer``'s phase constant-folded into the ``|+>`` staging write.

    Emitted by :class:`FoldInitialPhase` for the head op of a plan; executed
    through the provider's ``_stage_phase_block`` kernel, which writes
    ``exp(-i γ c[x]) / sqrt(N)`` directly instead of staging the uniform
    superposition and re-reading it for a separate phase sweep.  When a
    custom ``sv0`` is supplied at execution time the staging shortcut does
    not apply and the op degrades to a plain phase sweep.
    """

    layer: int


@dataclass(frozen=True)
class MergedPhaseOp:
    """Several adjacent phase sweeps merged into one with summed angles.

    Valid unconditionally — diagonal operators commute, and
    ``exp(-i γ_a C) · exp(-i γ_b C) = exp(-i (γ_a + γ_b) C)`` exactly.
    Emitted by :class:`ReorderCommuting` after zero-angle elimination leaves
    phase sweeps adjacent.
    """

    layers: tuple[int, ...]


@dataclass(frozen=True)
class MixerOp:
    """Apply ``exp(-i β_l M)`` — one mixer sweep of layer ``layer``.

    ``coalesce`` asks a distributed provider to exchange the whole batch
    block per global-qubit step instead of one row at a time (set by
    :class:`CoalesceExchanges`; meaningless for single-address-space
    backends and always ``False`` there).
    """

    layer: int
    n_trotters: int = 1
    coalesce: bool = False


@dataclass(frozen=True)
class MergedMixerOp:
    """Several adjacent mixer sweeps merged into one with summed angles.

    Only valid when the mixer commutes with itself at different angles
    (``mixer_self_commutes`` — true for the X mixer, where the merge is
    exact; the Trotterized XY mixers keep split sweeps).
    """

    layers: tuple[int, ...]
    n_trotters: int = 1
    coalesce: bool = False


@dataclass(frozen=True)
class FusedPhaseMixerOp:
    """Apply ``exp(-i β_l M) · exp(-i γ_l C)`` in one fused sweep.

    Emitted by :class:`FusePhaseIntoMixer`; executed through the provider's
    ``_apply_phase_mixer_block`` kernel, which folds the phase multiply into
    the first mixer pass over the block.
    """

    layer: int
    n_trotters: int = 1
    coalesce: bool = False


@dataclass(frozen=True)
class FusedMixerExpectationOp:
    """The plan tail ``mixer (optionally with fused phase) → expectation``.

    Emitted by :class:`FuseMixerIntoExpectation`; executed through the
    provider's ``_apply_mixer_expectation_block`` kernel, which skips the
    final copy-back of the mixer's ping-pong buffer and reduces
    ``Σ_x c[x] |ψ_x|²`` directly out of whichever buffer holds the result.
    ``with_phase`` records whether layer ``layer``'s phase sweep rides along
    (the former :class:`FusedPhaseMixerOp` half).
    """

    layer: int
    n_trotters: int = 1
    coalesce: bool = False
    with_phase: bool = False


@dataclass(frozen=True)
class ExpectationOp:
    """Reduce every block row to ``Σ_x c[x] |ψ_x|²`` (float64 accumulation)."""


#: Union of the op types a plan may contain.
PlanOp = (PhaseOp | InitialPhaseOp | MergedPhaseOp | MixerOp | MergedMixerOp
          | FusedPhaseMixerOp | FusedMixerExpectationOp | ExpectationOp)

#: Diagonal (phase-like) ops: they commute with each other and with the
#: expectation reduction.
_DIAGONAL_OPS = (PhaseOp, InitialPhaseOp, MergedPhaseOp)


# ---------------------------------------------------------------------------
# The pass framework.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RewriteReport:
    """What one pass did to one op list (feeds ``EngineStats.rewrites``)."""

    pass_name: str
    ops_before: int
    ops_after: int
    rewrites: int


class RewritePass(abc.ABC):
    """One rewrite over an op tuple.

    ``needs_angles`` splits the pipeline into the *structural* passes (run
    once at plan-compile time, results cached inside the plan) and the
    *angle-dependent* passes (run per batch, because the angles only arrive
    at execution time).
    """

    #: stable name used in reports, stats and ``BackendSpec.plan_rewrites``
    name: str = "rewrite"
    #: whether the pass needs the batch's angle columns to decide anything
    needs_angles: bool = False

    @abc.abstractmethod
    def run(self, ops: tuple[PlanOp, ...], simulator: Any, *,
            gammas: np.ndarray | None = None,
            betas: np.ndarray | None = None) -> tuple[tuple[PlanOp, ...], int]:
        """Rewrite ``ops``; returns the new tuple and the rewrite count."""


class FusePhaseIntoMixer(RewritePass):
    """Merge each layer's phase sweep into its mixer sweep.

    ``PhaseOp(l)`` immediately followed by ``MixerOp(l)`` becomes one
    :class:`FusedPhaseMixerOp` (preserving ``n_trotters`` and a previously
    set ``coalesce`` flag).  Gated on the provider's
    ``supports_fused_phase_mixer`` attribute — mixer families without the
    fused kernel (e.g. the XY mixers) keep the split ops.
    """

    name = "fuse-phase-mixer"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_fused_phase_mixer", False):
            return ops, 0
        out: list[PlanOp] = []
        rewrites = 0
        i = 0
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if (isinstance(op, PhaseOp) and isinstance(nxt, MixerOp)
                    and nxt.layer == op.layer):
                out.append(FusedPhaseMixerOp(layer=op.layer,
                                             n_trotters=nxt.n_trotters,
                                             coalesce=nxt.coalesce))
                rewrites += 1
                i += 2
            else:
                out.append(op)
                i += 1
        return tuple(out), rewrites


class CoalesceExchanges(RewritePass):
    """Mark every mixer op for block-wide global-qubit exchanges.

    Rewrites ``coalesce=False`` mixer and fused ops to ``coalesce=True`` so
    the Alltoall-strategy provider performs one collective over the whole
    ``(rows, local_states)`` block per exchange — the message count then no
    longer scales with the batch size.  Gated on
    ``supports_coalesced_exchange`` (only the Alltoall family sets it; the
    index-bit-swap family already exchanges whole blocks natively).
    """

    name = "coalesce-exchanges"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_coalesced_exchange", False):
            return ops, 0
        out: list[PlanOp] = []
        rewrites = 0
        for op in ops:
            if isinstance(op, (MixerOp, FusedPhaseMixerOp)) and not op.coalesce:
                out.append(replace(op, coalesce=True))
                rewrites += 1
            else:
                out.append(op)
        return tuple(out), rewrites


class FoldInitialPhase(RewritePass):
    """Constant-fold the head phase sweep into the ``|+>`` staging write.

    A plan whose first op is ``PhaseOp(0)`` stages
    ``exp(-i γ_0 c[x]) / sqrt(N)`` directly instead of writing the uniform
    superposition and immediately re-reading the whole block for the phase
    multiply.  Gated on ``supports_staged_phase``
    (``_stage_phase_block``); only the head op qualifies because only the
    head op acts on a known state.
    """

    name = "fold-initial-phase"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_staged_phase", False):
            return ops, 0
        if ops and isinstance(ops[0], PhaseOp) and ops[0].layer == 0:
            return (InitialPhaseOp(layer=0),) + ops[1:], 1
        return ops, 0


class FuseMixerIntoExpectation(RewritePass):
    """Fold the final mixer sweep into the expectation reduction.

    A plan tail of ``MixerOp(l), ExpectationOp`` (or ``FusedPhaseMixerOp(l),
    ExpectationOp``) becomes one :class:`FusedMixerExpectationOp`: the
    provider's ``_apply_mixer_expectation_block`` kernel leaves the mixer
    result in its ping-pong buffer — skipping the final copy-back — and
    reduces ``Σ c|ψ|²`` straight out of it.  Gated on
    ``supports_fused_mixer_expectation``; coalesced (distributed) mixer ops
    are left alone.
    """

    name = "fuse-mixer-expectation"

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if not getattr(simulator, "supports_fused_mixer_expectation", False):
            return ops, 0
        if len(ops) < 2 or not isinstance(ops[-1], ExpectationOp):
            return ops, 0
        tail = ops[-2]
        if isinstance(tail, (MixerOp, FusedPhaseMixerOp)) and not tail.coalesce:
            fused = FusedMixerExpectationOp(
                layer=tail.layer, n_trotters=tail.n_trotters,
                coalesce=tail.coalesce,
                with_phase=isinstance(tail, FusedPhaseMixerOp))
            return ops[:-2] + (fused,), 1
        return ops, 0


class EliminateNoOps(RewritePass):
    """Drop phase/mixer ops whose angle column is exactly zero.

    ``exp(-i·0·C)`` and ``exp(-i·0·M)`` are the identity *exactly* (for all
    mixer families — no Trotter error at zero angle), so a layer whose γ or
    β column is all-zero across the batch can skip the corresponding sweep.
    A fused op with one zero half is demoted back to its surviving half.
    Runs per batch (``needs_angles``), after the structural passes.
    """

    name = "eliminate-noops"
    needs_angles = True

    def run(self, ops, simulator, *, gammas=None, betas=None):
        if gammas is None or betas is None:
            raise ValueError("EliminateNoOps needs the batch angle columns")
        zero_g = ~np.any(gammas != 0.0, axis=0)
        zero_b = ~np.any(betas != 0.0, axis=0)
        out: list[PlanOp] = []
        rewrites = 0
        for op in ops:
            if isinstance(op, (PhaseOp, InitialPhaseOp)) and zero_g[op.layer]:
                rewrites += 1
            elif isinstance(op, MixerOp) and zero_b[op.layer]:
                rewrites += 1
            elif isinstance(op, FusedPhaseMixerOp) and (zero_g[op.layer]
                                                        or zero_b[op.layer]):
                rewrites += 1
                if not zero_b[op.layer]:
                    out.append(MixerOp(layer=op.layer, n_trotters=op.n_trotters,
                                       coalesce=op.coalesce))
                elif not zero_g[op.layer]:
                    out.append(PhaseOp(layer=op.layer))
                # both halves zero: the whole layer is the identity
            elif isinstance(op, FusedMixerExpectationOp) and (
                    zero_b[op.layer] or (op.with_phase and zero_g[op.layer])):
                rewrites += 1
                if zero_b[op.layer]:
                    # mixer half is the identity; a surviving phase half is
                    # diagonal and cannot change |ψ|², handled by the
                    # reorder pass — emit it for faithfulness anyway.
                    if op.with_phase and not zero_g[op.layer]:
                        out.append(PhaseOp(layer=op.layer))
                    out.append(ExpectationOp())
                else:  # with_phase and zero γ: keep the mixer/expectation half
                    out.append(replace(op, with_phase=False))
            else:
                out.append(op)
        return tuple(out), rewrites


class ReorderCommuting(RewritePass):
    """Exploit commutation identities exposed by zero-angle elimination.

    Three rewrites, all exact:

    * a run of diagonal ops (phase sweeps) immediately before the final
      :class:`ExpectationOp` is dropped — diagonal unitaries cannot change
      ``|ψ|²``, so the reduction commutes past them;
    * adjacent phase sweeps merge into one :class:`MergedPhaseOp` with
      summed angles (diagonals commute);
    * adjacent mixer sweeps with matching ``n_trotters``/``coalesce`` merge
      into one :class:`MergedMixerOp` — gated on ``mixer_self_commutes``
      (exact for the X mixer; the Trotterized XY families keep split
      sweeps).

    Runs per batch, after :class:`EliminateNoOps` (elimination is what
    creates the adjacencies).
    """

    name = "reorder-commuting"
    needs_angles = True

    def run(self, ops, simulator, *, gammas=None, betas=None):
        rewrites = 0
        ops = list(ops)
        # 1. drop diagonal ops trailing into a plain expectation reduction
        if ops and isinstance(ops[-1], ExpectationOp):
            while len(ops) >= 2 and isinstance(ops[-2], _DIAGONAL_OPS):
                del ops[-2]
                rewrites += 1
        # 2. merge adjacent phase sweeps / adjacent self-commuting mixers
        merge_mixers = getattr(simulator, "mixer_self_commutes", False)
        out: list[PlanOp] = []
        i = 0
        while i < len(ops):
            op = ops[i]
            if isinstance(op, PhaseOp):
                j = i + 1
                while j < len(ops) and isinstance(ops[j], PhaseOp):
                    j += 1
                if j - i >= 2:
                    out.append(MergedPhaseOp(
                        layers=tuple(ops[k].layer for k in range(i, j))))
                    rewrites += j - i - 1
                    i = j
                    continue
            elif merge_mixers and isinstance(op, MixerOp):
                j = i + 1
                while (j < len(ops) and isinstance(ops[j], MixerOp)
                       and ops[j].n_trotters == op.n_trotters
                       and ops[j].coalesce == op.coalesce):
                    j += 1
                if j - i >= 2:
                    out.append(MergedMixerOp(
                        layers=tuple(ops[k].layer for k in range(i, j)),
                        n_trotters=op.n_trotters, coalesce=op.coalesce))
                    rewrites += j - i - 1
                    i = j
                    continue
            out.append(op)
            i += 1
        return tuple(out), rewrites


#: The structural (angle-independent) passes in their *declared* order — the
#: order the cost model falls back to on ties and for providers it cannot
#: model.
STRUCTURAL_PASSES: tuple[RewritePass, ...] = (
    FusePhaseIntoMixer(),
    CoalesceExchanges(),
    FoldInitialPhase(),
    FuseMixerIntoExpectation(),
)

#: The default pipeline.  Structural passes first (cached inside compiled
#: plans, applied in cost-model order), then the angle-dependent
#: specialization (re-run per batch, in this order).
DEFAULT_PASSES: tuple[RewritePass, ...] = STRUCTURAL_PASSES + (
    EliminateNoOps(),
    ReorderCommuting(),
)


def run_passes(ops: tuple[PlanOp, ...], simulator: Any, *,
               gammas: np.ndarray | None = None,
               betas: np.ndarray | None = None,
               passes: tuple[RewritePass, ...] = DEFAULT_PASSES,
               stage: str = "compile") -> tuple[tuple[PlanOp, ...],
                                                tuple[RewriteReport, ...]]:
    """Run one stage of the pipeline over an op tuple.

    ``stage="compile"`` runs the structural (angle-independent) passes in
    the order chosen by the :mod:`repro.fur.costmodel` traffic model for
    this simulator (declared order on ties or when the simulator cannot be
    modelled); ``stage="execute"`` runs the angle-dependent ones, in their
    declared order, against the batch's ``(B, p)`` angle arrays.  Returns
    the rewritten tuple plus one :class:`RewriteReport` per pass that ran.
    """
    if stage not in ("compile", "execute"):
        raise ValueError(f"unknown rewrite stage {stage!r}")
    stage_passes = tuple(p for p in passes
                         if p.needs_angles == (stage == "execute"))
    if stage == "compile" and len(stage_passes) > 1:
        from .costmodel import order_structural_passes

        stage_passes = order_structural_passes(stage_passes, ops, simulator)
    reports: list[RewriteReport] = []
    for rewrite in stage_passes:
        before = len(ops)
        ops, rewrites = rewrite.run(ops, simulator, gammas=gammas, betas=betas)
        reports.append(RewriteReport(pass_name=rewrite.name, ops_before=before,
                                     ops_after=len(ops), rewrites=rewrites))
    return ops, tuple(reports)
