"""Layered execution-plan engine shared by every simulator backend.

Before this module existed, the orchestration of batched QAOA evaluation —
layer sequencing, phase-table reuse, memory-budgeted sub-batch splitting,
scratch-block lifetime and the float64 accumulation policy — was
re-implemented once per backend family (a ``FusedBatchEngineMixin`` plus three
per-backend fused loops), and the distributed backends were left on the slow
looped default.  The engine extracts that orchestration into exactly one
place:

* a ``(p, mixer, precision, n_trotters, batch-memory-budget)`` tuple is
  *compiled* into an :class:`ExecutionPlan` — a declarative sequence of layer
  ops (:class:`PhaseOp`, :class:`MixerOp`, terminated by an
  :class:`ExpectationOp` when the batch is reduced to objective values) plus
  the resolved phase tables;
* plans are cached per simulator (next to the resolved-diagonal/phase-table
  caches the base class already keeps), so repeated evaluation at the same
  depth — the Fig. 2 optimization loop — pays for exactly one compilation;
* execution walks the op list over ``(rows, 2^n)`` state blocks, splitting
  batches that exceed the memory budget into sub-batches and reusing one
  mixer scratch block per sub-batch;
* backends participate through the narrow :class:`KernelProvider` protocol
  (stage a block, apply one phase/mixer layer to it, reduce it, split it,
  release it) — a new backend, mixer or device is a ~100-line kernel
  provider, never a fourth copy of the orchestration loop.

The engine also owns the *looped* path (one :meth:`simulate_qaoa` call per
schedule) used by backends that do not implement the provider protocol, and
exposed explicitly via ``mode="looped"`` for benchmarking the fused engines
against their baseline.

After a plan's base op list is built, the optimizer pass pipeline
(:mod:`repro.fur.rewrite`) rewrites it: phase sweeps fuse into the following
mixer sweep (:class:`~repro.fur.rewrite.FusedPhaseMixerOp`), distributed
exchanges coalesce across the batch, and zero-angle ops are eliminated per
batch.  The ``optimize="default"|"none"`` knob (simulator constructor,
batched entry points, plan-cache key) switches the pipeline off entirely so
optimized plans can always be pinned against the unoptimized op stream.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from .base import validate_angle_batches
from .capabilities import UnsupportedCapabilityError, require_capability
from .diagonal import CompressedDiagonal
from .rewrite import (
    ExpectationOp,
    FusedMixerExpectationOp,
    FusedPhaseMixerOp,
    InitialPhaseOp,
    MergedMixerOp,
    MergedPhaseOp,
    MixerOp,
    PhaseOp,
    PlanOp,
    RewriteReport,
    resolve_optimize,
    run_passes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import QAOAFastSimulatorBase

__all__ = [
    "PhaseOp",
    "InitialPhaseOp",
    "MergedPhaseOp",
    "MixerOp",
    "MergedMixerOp",
    "FusedPhaseMixerOp",
    "FusedMixerExpectationOp",
    "ExpectationOp",
    "UnsupportedCapabilityError",
    "ExecutionPlan",
    "EngineStats",
    "KernelProvider",
    "ExecutionEngine",
    "EXECUTION_MODES",
]

#: Accepted values of the ``mode`` argument of the batched entry points.
EXECUTION_MODES = ("auto", "fused", "looped")


def _plan_key(p: int, n_trotters: int, memory_budget: float | None,
              reduce: bool, precision: str, optimize: str) -> tuple:
    """The plan-cache key — the single definition shared by the engine's
    cache lookup and :attr:`ExecutionPlan.key`."""
    return (int(p), int(n_trotters), memory_budget, bool(reduce), precision,
            optimize)


# ---------------------------------------------------------------------------
# Plans and statistics.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled, cacheable recipe for evaluating batches of QAOA schedules.

    The plan is declarative: :attr:`ops` is the exact sequence of layer
    operations the engine will drive through the owning simulator's kernel
    provider, and everything resolved at compile time (the phase tables, the
    memory budget) rides along so execution touches no caches.
    """

    #: number of QAOA layers p
    p: int
    #: mixer family of the owning simulator ("x", "xyring", "xycomplete")
    mixer: str
    #: simulation precision name of the owning simulator
    precision: str
    #: Trotter slices per mixer application (XY mixers)
    n_trotters: int
    #: memory budget (bytes) for block scratch; ``None`` = backend default
    memory_budget: float | None
    #: whether the plan ends in an objective reduction (ExpectationOp)
    reduce: bool
    #: optimizer level the plan was compiled at ("default" or "none")
    optimize: str
    #: the declarative op sequence executed per sub-batch (already rewritten
    #: by the structural optimizer passes when ``optimize != "none"``)
    ops: tuple[PlanOp, ...]
    #: per-pass reports of the compile-time rewrites applied to :attr:`ops`
    rewrites: tuple[RewriteReport, ...]
    #: provider-specific phase-table object(s) resolved at compile time
    #: (a :class:`~repro.fur.diagonal.DiagonalPhaseTable` for single-address-
    #: space backends, a per-rank tuple for the distributed families, or
    #: ``None`` when the diagonal is not repetitive enough)
    phase_tables: Any
    #: wall-clock seconds spent compiling this plan (includes the first
    #: phase-table build when it was not already cached on the simulator)
    compile_time_s: float

    @property
    def key(self) -> tuple:
        """The cache key this plan is stored under."""
        return _plan_key(self.p, self.n_trotters, self.memory_budget,
                         self.reduce, self.precision, self.optimize)


@dataclass
class EngineStats:
    """Counters describing one engine's activity (feeds ``--engine-report``)."""

    plan_compiles: int = 0
    plan_cache_hits: int = 0
    compile_time_s: float = 0.0
    #: wall-clock seconds providers spent JIT-compiling kernels (numba type
    #: specialization or the jit tier's one-time C build) — reported apart
    #: from plan compilation and never included in execution timings
    kernel_compile_time_s: float = 0.0
    blocks_executed: int = 0
    rows_executed: int = 0
    looped_evaluations: int = 0
    #: FusedPhaseMixerOp executions (fused ops are counted distinctly from
    #: the split phase/mixer sweeps so rewrite wins are visible in reports)
    fused_ops_executed: int = 0
    #: mixer/fused ops executed with a batch-coalesced global exchange
    coalesced_exchange_ops: int = 0
    #: zero-angle ops dropped by the per-batch EliminateNoOps pass
    ops_eliminated: int = 0
    #: blocks staged with the layer-0 phase folded into the |+> write
    #: (the FoldInitialPhase rewrite's _stage_phase_block path)
    staged_phase_ops: int = 0
    #: FusedMixerExpectationOp executions (final mixer reduced without the
    #: ping-pong copy-back — the FuseMixerIntoExpectation rewrite)
    mixer_expectation_fused_ops: int = 0
    #: MergedPhaseOp/MergedMixerOp executions (adjacent sweeps collapsed to
    #: one with summed angles — the ReorderCommuting rewrite)
    merged_ops_executed: int = 0
    #: slab-exchange messages sent by the in-process sharded backend (one
    #: pairwise slab swap counts two messages, mirroring the MPI traces)
    shard_exchanges: int = 0
    #: bytes moved between shards by those exchanges
    exchange_bytes: int = 0
    #: per-shard busy seconds inside parallel shard dispatches
    shard_busy_s: dict[int, float] = field(default_factory=dict)
    #: wall-clock seconds spent inside parallel shard dispatches (the
    #: denominator of the per-shard busy fractions)
    shard_wall_s: float = 0.0
    #: per-pass rewrite totals: pass name -> {"runs", "rewrites",
    #: "ops_before", "ops_after"} accumulated over every pipeline run
    rewrites: dict[str, dict[str, int]] = field(default_factory=dict)

    def record_rewrites(self, reports: tuple[RewriteReport, ...]) -> None:
        """Accumulate one pipeline run's per-pass reports."""
        for report in reports:
            entry = self.rewrites.setdefault(report.pass_name, {
                "runs": 0, "rewrites": 0, "ops_before": 0, "ops_after": 0,
            })
            entry["runs"] += 1
            entry["rewrites"] += report.rewrites
            entry["ops_before"] += report.ops_before
            entry["ops_after"] += report.ops_after

    def as_dict(self) -> dict:
        """Plain-dict snapshot for JSON reports."""
        return {
            "plan_compiles": self.plan_compiles,
            "plan_cache_hits": self.plan_cache_hits,
            "compile_time_s": self.compile_time_s,
            "kernel_compile_time_s": self.kernel_compile_time_s,
            "blocks_executed": self.blocks_executed,
            "rows_executed": self.rows_executed,
            "looped_evaluations": self.looped_evaluations,
            "fused_ops_executed": self.fused_ops_executed,
            "coalesced_exchange_ops": self.coalesced_exchange_ops,
            "ops_eliminated": self.ops_eliminated,
            "staged_phase_ops": self.staged_phase_ops,
            "mixer_expectation_fused_ops": self.mixer_expectation_fused_ops,
            "merged_ops_executed": self.merged_ops_executed,
            "shard_exchanges": self.shard_exchanges,
            "exchange_bytes": self.exchange_bytes,
            "shard_busy_fraction": self.shard_busy_fractions(),
            "rewrites": {name: dict(entry)
                         for name, entry in self.rewrites.items()},
        }

    def shard_busy_fractions(self) -> dict[str, float]:
        """Per-shard busy fraction of the parallel-dispatch wall clock.

        Empty for non-sharded backends (no shard dispatch was ever recorded);
        a fraction near 1.0 for every shard means the worker pool was
        load-balanced, a lone hot shard means a skewed slab assignment.
        """
        if self.shard_wall_s <= 0.0:
            return {}
        return {str(s): busy / self.shard_wall_s
                for s, busy in sorted(self.shard_busy_s.items())}


# ---------------------------------------------------------------------------
# The kernel-provider protocol backends implement.
# ---------------------------------------------------------------------------

@runtime_checkable
class KernelProvider(Protocol):
    """The per-backend surface the execution engine drives.

    A backend opts into the fused engine by setting
    ``supports_fused_engine = True`` on its simulator class and implementing
    these hooks.  ``block`` is an opaque backend object — a host ``(rows,
    2^n)`` ndarray, a device-resident block, or a list of per-rank slice
    blocks for the distributed families; the engine never looks inside it.
    """

    #: providers set this to ``True``; the base class default is ``False``
    supports_fused_engine: bool
    #: whether the mixer consumes a ping-pong scratch block
    _mixer_needs_scratch: bool
    #: whether :meth:`_apply_phase_mixer_block` is implemented (gates the
    #: FusePhaseIntoMixer rewrite; mixer-specific — e.g. X-mixer only)
    supports_fused_phase_mixer: bool
    #: whether :meth:`_apply_mixer_block_coalesced` is implemented (gates the
    #: CoalesceExchanges rewrite; only the distributed Alltoall family)
    supports_coalesced_exchange: bool
    #: whether the provider's fused kernels execute a whole layer in one
    #: cache-blocked pass over the block (the ``jit`` tier) — consumed by
    #: the rewrite cost model, which then prices mixer sweeps at ~2 streamed
    #: passes instead of one per qubit
    supports_single_pass: bool

    def _batch_rows(self, remaining: int, memory_budget: float | None) -> int:
        """Rows of the next sub-batch (re-derived as device results accumulate)."""
        ...

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> Any:
        """Materialize (and, for device backends, upload) a ``rows``-row block."""
        ...

    def _mixer_scratch(self, block: Any) -> Any:
        """Allocate the per-sub-batch ping-pong scratch for the mixer."""
        ...

    def _apply_phase_block(self, block: Any, gammas: np.ndarray,
                           plan: ExecutionPlan) -> None:
        """One phase sweep over the block (``plan.phase_tables`` pre-resolved)."""
        ...

    def _apply_mixer_block(self, block: Any, betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        """One mixer sweep over the block."""
        ...

    def _apply_mixer_block_coalesced(self, block: Any, betas: np.ndarray,
                                     n_trotters: int, scratch: Any) -> None:
        """Mixer sweep with batch-coalesced global exchanges (optional)."""
        ...

    def _apply_phase_mixer_block(self, block: Any, gammas: np.ndarray,
                                 betas: np.ndarray, op: FusedPhaseMixerOp,
                                 scratch: Any, plan: ExecutionPlan) -> None:
        """Fused phase+mixer sweep of one layer (optional kernel)."""
        ...

    def _block_expectations(self, block: Any, costs: Any) -> np.ndarray:
        """Per-row objective values (float64) against a staged diagonal."""
        ...

    def _block_results(self, block: Any) -> list[Any]:
        """Split a block into per-schedule backend result objects."""
        ...

    def _release_block(self, block: Any) -> None:
        """Free a block after its reduction (device backends)."""
        ...

    def _stage_batch_costs(self, resolved: np.ndarray) -> Any:
        """Stage a resolved float64 diagonal for the whole batch (device hook)."""
        ...

    def _release_batch_costs(self, staged: Any) -> None:
        """Release a diagonal staged by :meth:`_stage_batch_costs`."""
        ...


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------

class ExecutionEngine:
    """Compiles and executes :class:`ExecutionPlan`\\ s for one simulator.

    One engine is owned (lazily) by each simulator instance; its plan cache
    lives alongside the simulator's resolved-diagonal and phase-table caches
    and shares their lifetime.  All batched evaluation of every backend
    routes through :meth:`simulate_batch` / :meth:`expectation_batch`.

    The plan cache and the statistics counters are guarded by a per-engine
    lock: the serving layer (:mod:`repro.serve`) drives engines from a thread
    pool, and an unguarded racing first compile would double-compile the plan
    and tear the stats bookkeeping.  Plan compilation is single-flight (the
    lock is held across the compile); block execution itself never holds it.
    """

    def __init__(self, simulator: QAOAFastSimulatorBase) -> None:
        self._sim = simulator
        self._plans: dict[tuple, ExecutionPlan] = {}
        #: guards the plan cache and stats (reentrant: compile records stats)
        self._lock = threading.RLock()
        self.stats = EngineStats()

    # -- plan compilation ----------------------------------------------------
    @property
    def simulator(self) -> QAOAFastSimulatorBase:
        """The simulator this engine drives."""
        return self._sim

    def plan_cache_size(self) -> int:
        """Number of compiled plans currently cached."""
        with self._lock:
            return len(self._plans)

    def clear_plans(self) -> None:
        """Drop every cached plan (the next evaluation recompiles)."""
        with self._lock:
            self._plans.clear()

    # -- shard telemetry (recorded by sharded providers) ---------------------
    def record_shard_exchange(self, messages: int, nbytes: int) -> None:
        """Account one slab exchange: message count and bytes moved."""
        with self._lock:
            self.stats.shard_exchanges += int(messages)
            self.stats.exchange_bytes += int(nbytes)

    def record_shard_dispatch(self, busy_s: Sequence[float],
                              wall_s: float) -> None:
        """Account one parallel shard dispatch: per-shard busy + wall time."""
        with self._lock:
            self.stats.shard_wall_s += float(wall_s)
            busy = self.stats.shard_busy_s
            for shard, seconds in enumerate(busy_s):
                busy[shard] = busy.get(shard, 0.0) + float(seconds)

    def plan(self, p: int, *, n_trotters: int = 1,
             memory_budget: float | None = None,
             reduce: bool = True,
             optimize: str | None = None) -> ExecutionPlan:
        """The cached plan for a depth/budget tuple, compiling on first use.

        The cache key includes the simulator precision and the ``optimize``
        level, so tests can assert that a precision change (a new simulator),
        a ``p``/``n_trotters``/budget change or an optimizer toggle
        recompiles while repeated evaluation at the same shape hits the
        cache.  ``optimize=None`` defaults to the owning simulator's knob;
        with ``"default"`` the structural rewrite passes
        (:data:`~repro.fur.rewrite.DEFAULT_PASSES`) transform the op list at
        compile time and the per-pass reports ride along on the plan.
        """
        if p <= 0:
            raise ValueError("p must be positive")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        optimize = resolve_optimize(self._sim.optimize if optimize is None
                                    else optimize)
        key = _plan_key(p, n_trotters, memory_budget, reduce,
                        self._sim.precision, optimize)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self.stats.plan_cache_hits += 1
                return cached
            start = time.perf_counter()
            ops: list[PlanOp] = []
            for layer in range(p):
                ops.append(PhaseOp(layer=layer))
                ops.append(MixerOp(layer=layer, n_trotters=int(n_trotters)))
            if reduce:
                ops.append(ExpectationOp())
            ops = tuple(ops)
            reports: tuple[RewriteReport, ...] = ()
            if optimize != "none" and self._sim.supports_fused_engine:
                ops, reports = run_passes(ops, self._sim, stage="compile")
                self.stats.record_rewrites(reports)
            # Resolving the phase tables here (rather than per sub-batch) makes
            # the first compile pay the one-time unique-value factorization; the
            # simulator-level cache makes subsequent compiles near-free.
            tables = (self._sim._engine_phase_tables()
                      if self._sim.supports_fused_engine else None)
            plan = ExecutionPlan(
                p=int(p),
                mixer=self._sim.mixer_name,
                precision=self._sim.precision,
                n_trotters=int(n_trotters),
                memory_budget=memory_budget,
                reduce=bool(reduce),
                optimize=optimize,
                ops=ops,
                rewrites=reports,
                phase_tables=tables,
                compile_time_s=time.perf_counter() - start,
            )
            self._plans[key] = plan
            self.stats.plan_compiles += 1
            self.stats.compile_time_s += plan.compile_time_s
            return plan

    # -- mode resolution -----------------------------------------------------
    def _resolve_mode(self, mode: str) -> str:
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        if mode == "auto":
            return "fused" if self._sim.supports_fused_engine else "looped"
        if mode == "fused" and not self._sim.supports_fused_engine:
            raise ValueError(
                f"backend {self._sim.backend_name!r} does not implement the "
                "fused kernel-provider protocol; use mode='looped' or 'auto'"
            )
        return mode

    def _resolve_sv0(self, sv0: np.ndarray | None, batch: int,
                     mode: str) -> tuple[np.ndarray | None, bool, str]:
        """Normalize ``sv0`` and pick the execution path it can ride.

        Returns ``(sv0, per_row, resolved_mode)``: ``per_row`` is true when
        ``sv0`` is a ``(B, 2^n)`` block carrying one initial state per
        schedule row.  Providers that do not advertise
        ``supports_batched_sv0`` serve per-row blocks through the looped
        fallback under ``mode="auto"``; an explicit ``mode="fused"`` request
        they cannot honour raises instead of silently degrading.
        """
        resolved = self._resolve_mode(mode)
        if sv0 is None:
            return None, False, resolved
        arr = np.asarray(sv0)
        if arr.ndim != 2:
            return arr, False, resolved
        if arr.shape[0] != batch:
            raise ValueError(
                f"per-row initial-state block has {arr.shape[0]} rows for a "
                f"batch of {batch} schedules"
            )
        if resolved == "fused" and not self._sim.supports_batched_sv0:
            if mode == "fused":
                raise ValueError(
                    f"backend {self._sim.backend_name!r} does not support "
                    "per-row initial-state blocks on the fused path; use "
                    "mode='looped' or 'auto'"
                )
            resolved = "looped"
        return arr, True, resolved

    @staticmethod
    def _fused_kwargs(kwargs: dict) -> int:
        """Extract ``n_trotters`` from the fused path's kwargs, reject the rest."""
        n_trotters = kwargs.pop("n_trotters", 1)
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        return int(n_trotters)

    # -- execution -----------------------------------------------------------
    def _batch_ops(self, plan: ExecutionPlan, g: np.ndarray,
                   b: np.ndarray) -> tuple[PlanOp, ...]:
        """The plan's ops specialized to one batch's angle columns.

        Runs the angle-dependent optimizer passes (zero-angle elimination)
        when the plan was compiled with optimization on; a column is a no-op
        exactly when it is zero across the *whole* batch, so every sub-batch
        shares the specialized sequence.
        """
        if plan.optimize == "none" or not self._sim.supports_fused_engine:
            return plan.ops
        ops, reports = run_passes(plan.ops, self._sim, gammas=g, betas=b,
                                  stage="execute")
        with self._lock:
            self.stats.record_rewrites(reports)
            self.stats.ops_eliminated += sum(r.ops_before - r.ops_after
                                             for r in reports)
        return ops

    def _run_ops(self, plan: ExecutionPlan, ops: tuple[PlanOp, ...],
                 g_sub: np.ndarray, b_sub: np.ndarray,
                 sv0: np.ndarray | None, staged_costs: Any) -> tuple[Any, np.ndarray | None]:
        """Drive one sub-batch block through an op sequence."""
        sim = self._sim
        staged_phase = 0
        if ops and isinstance(ops[0], InitialPhaseOp) and sv0 is None:
            # FoldInitialPhase: the head phase is written during staging.
            # With a custom sv0 the shortcut does not apply — the op then
            # degrades to a plain phase sweep in the loop below.
            block = sim._stage_phase_block(g_sub[:, ops[0].layer], plan)
            ops = ops[1:]
            staged_phase = 1
        else:
            block = sim._stage_block(sv0, g_sub.shape[0])
        scratch = sim._mixer_scratch(block) if sim._mixer_needs_scratch else None
        values: np.ndarray | None = None
        fused_ops = coalesced_ops = mixer_expectation_ops = merged_ops = 0
        for op in ops:
            if isinstance(op, (PhaseOp, InitialPhaseOp)):
                sim._apply_phase_block(block, g_sub[:, op.layer], plan)
            elif isinstance(op, MergedPhaseOp):
                sim._apply_phase_block(
                    block, g_sub[:, list(op.layers)].sum(axis=1), plan)
                merged_ops += 1
            elif isinstance(op, FusedPhaseMixerOp):
                sim._apply_phase_mixer_block(block, g_sub[:, op.layer],
                                             b_sub[:, op.layer], op, scratch,
                                             plan)
                fused_ops += 1
                if op.coalesce:
                    coalesced_ops += 1
            elif isinstance(op, (MixerOp, MergedMixerOp)):
                if isinstance(op, MergedMixerOp):
                    betas = b_sub[:, list(op.layers)].sum(axis=1)
                    merged_ops += 1
                else:
                    betas = b_sub[:, op.layer]
                if op.coalesce:
                    sim._apply_mixer_block_coalesced(block, betas,
                                                     op.n_trotters, scratch)
                    coalesced_ops += 1
                else:
                    sim._apply_mixer_block(block, betas, op.n_trotters,
                                           scratch)
            elif isinstance(op, FusedMixerExpectationOp):
                values = sim._apply_mixer_expectation_block(
                    block, g_sub[:, op.layer] if op.with_phase else None,
                    b_sub[:, op.layer], op, scratch, staged_costs, plan)
                mixer_expectation_ops += 1
                if op.with_phase:
                    fused_ops += 1
            else:  # ExpectationOp
                values = sim._block_expectations(block, staged_costs)
        with self._lock:
            self.stats.fused_ops_executed += fused_ops
            self.stats.coalesced_exchange_ops += coalesced_ops
            self.stats.mixer_expectation_fused_ops += mixer_expectation_ops
            self.stats.merged_ops_executed += merged_ops
            self.stats.staged_phase_ops += staged_phase
            self.stats.blocks_executed += 1
            self.stats.rows_executed += int(g_sub.shape[0])
        return block, values

    def _sub_batches(self, batch: int, memory_budget: float | None):
        """Yield ``(r0, r1)`` sub-batch bounds honouring the memory budget.

        The provider's :meth:`~KernelProvider._batch_rows` is consulted once
        per sub-batch with the *remaining* schedule count, so device backends
        whose per-row results stay resident can shrink later sub-batches as
        memory fills.
        """
        r0 = 0
        while r0 < batch:
            rows = self._sim._batch_rows(batch - r0, memory_budget)
            yield r0, min(r0 + rows, batch)
            r0 = min(r0 + rows, batch)

    def simulate_batch(self, gammas_batch, betas_batch,
                       sv0: np.ndarray | None = None, *,
                       memory_budget: float | None = None,
                       mode: str = "auto",
                       optimize: str | None = None, **kwargs: Any) -> list[Any]:
        """Evolve a batch of schedules; one backend result object per schedule.

        Requires a ``statevector``-capable backend: an ``expectation-only``
        family (e.g. tensornet) raises
        :class:`~repro.fur.capabilities.UnsupportedCapabilityError` up front
        instead of failing deep inside the block walk.
        """
        require_capability(self._sim, "statevector")
        g, b = validate_angle_batches(gammas_batch, betas_batch)
        sv0, per_row, resolved = self._resolve_sv0(sv0, g.shape[0], mode)
        if resolved == "looped":
            with self._lock:
                self.stats.looped_evaluations += g.shape[0]
            return [self._sim.simulate_qaoa(
                        gi, bi, sv0=sv0[i] if per_row else sv0, **kwargs)
                    for i, (gi, bi) in enumerate(zip(g, b))]
        n_trotters = self._fused_kwargs(kwargs)
        plan = self.plan(g.shape[1], n_trotters=n_trotters,
                         memory_budget=memory_budget, reduce=False,
                         optimize=optimize)
        ops = self._batch_ops(plan, g, b)
        results: list[Any] = []
        for r0, r1 in self._sub_batches(g.shape[0], memory_budget):
            block, _ = self._run_ops(plan, ops, g[r0:r1], b[r0:r1],
                                     sv0[r0:r1] if per_row else sv0, None)
            results.extend(self._sim._block_results(block))
        return results

    def expectation_batch(self, gammas_batch, betas_batch,
                          costs: np.ndarray | CompressedDiagonal | None = None,
                          sv0: np.ndarray | None = None, *,
                          memory_budget: float | None = None,
                          mode: str = "auto",
                          optimize: str | None = None, **kwargs: Any) -> np.ndarray:
        """Objective values for a batch of schedules, as a length-``B`` array.

        The diagonal is resolved to float64 exactly once for the whole batch
        (the engine-wide accumulation policy); evolved blocks are released
        after their reduction, so peak memory follows the budget, not the
        batch size.
        """
        require_capability(self._sim, "expectation")
        g, b = validate_angle_batches(gammas_batch, betas_batch)
        resolved_costs = self._sim._resolve_costs(costs)
        sv0, per_row, resolved = self._resolve_sv0(sv0, g.shape[0], mode)
        if resolved == "looped":
            with self._lock:
                self.stats.looped_evaluations += g.shape[0]
            out = np.empty(g.shape[0], dtype=np.float64)
            for i, (gi, bi) in enumerate(zip(g, b)):
                result = self._sim.simulate_qaoa(
                    gi, bi, sv0=sv0[i] if per_row else sv0, **kwargs)
                out[i] = self._sim.get_expectation(result, costs=resolved_costs,
                                                  preserve_state=False)
            return out
        n_trotters = self._fused_kwargs(kwargs)
        plan = self.plan(g.shape[1], n_trotters=n_trotters,
                         memory_budget=memory_budget, reduce=True,
                         optimize=optimize)
        ops = self._batch_ops(plan, g, b)
        out = np.empty(g.shape[0], dtype=np.float64)
        staged = self._sim._stage_batch_costs(resolved_costs)
        try:
            for r0, r1 in self._sub_batches(g.shape[0], memory_budget):
                block, values = self._run_ops(plan, ops, g[r0:r1], b[r0:r1],
                                              sv0[r0:r1] if per_row else sv0,
                                              staged)
                try:
                    out[r0:r1] = values
                finally:
                    self._sim._release_block(block)
        finally:
            self._sim._release_batch_costs(staged)
        return out
