"""Memory-traffic cost model for plan-rewrite pass ordering.

The structural rewrite passes do not commute: ``FusePhaseIntoMixer`` eats
the head ``PhaseOp`` that ``FoldInitialPhase`` wants, and whether that trade
is worth it depends on what each resulting op stream *costs*.  Rather than
hard-coding one pass order, the engine scores every permutation of the
structural passes with this model and applies the cheapest.

The model prices an op stream in bytes of memory traffic, reusing the
calibrated bandwidth-bound op costs of
:class:`repro.parallel.perfmodel.PerformanceModel` at a single rank — the
byte counts here are exactly the numerators of ``phase_time`` /
``mixer_compute_time`` (bandwidth divides out when comparing plans on one
device, and integer byte counts make the comparison deterministic):

* staging the ``|+>`` block writes the state once;
* a phase sweep is one fused read-modify-write of the state plus the
  diagonal read;
* a mixer sweep streams the state once per qubit rotation (read + write),
  per Trotter step;
* a fused phase+mixer sweep saves the phase's read-modify-write — only the
  diagonal read remains;
* a phase folded into staging likewise adds only the diagonal read;
* the expectation reduction reads the state and the diagonal;
* fusing the final mixer into the expectation skips the mixer's copy-back
  of the ping-pong buffer — one state write saved.
"""

from __future__ import annotations

from itertools import permutations
from typing import Any

from ..parallel.perfmodel import PerformanceModel
from .rewrite import (
    ExpectationOp,
    FusedMixerExpectationOp,
    FusedPhaseMixerOp,
    InitialPhaseOp,
    MergedMixerOp,
    MergedPhaseOp,
    MixerOp,
    PhaseOp,
    PlanOp,
    RewritePass,
)

__all__ = ["PlanCostModel", "order_structural_passes",
           "MESSAGE_OVERHEAD_BYTES", "EXCHANGE_ROWS_ESTIMATE"]

#: Fixed per-message cost of a slab exchange, expressed in equivalent bytes
#: of memory traffic (dispatch, buffer churn, synchronization).  This is what
#: makes a coalesced exchange (messages independent of the batch size) price
#: cheaper than the per-row path at equal byte volume.
MESSAGE_OVERHEAD_BYTES: int = 1 << 12

#: Modelled batch rows for the *non*-coalesced exchange path (its message
#: count scales with the batch, which is unknown at plan-compile time; this
#: mirrors the benchmark harness's full-size batch).
EXCHANGE_ROWS_ESTIMATE: int = 32


class PlanCostModel:
    """Price op streams in bytes of memory traffic at a single rank.

    ``single_pass_mixer`` models the ``jit`` kernel tier: its fused kernels
    apply every butterfly of a layer per cache-sized tile, so a mixer sweep
    streams the state ~2× (read + write) instead of once per qubit.

    ``n_shards``/``n_workers`` model the in-process sharded backend: compute
    traffic divides across the parallel workers (ceil division keeps the
    comparison in deterministic integers), while each mixer application
    additionally pays the slab-exchange traffic of relabeling the global
    qubits — two transpositions moving ``(K−1)/K`` of the state each, plus a
    fixed :data:`MESSAGE_OVERHEAD_BYTES` per message.  With
    ``coalesced_exchange`` the message count is the batch-independent
    ``K(K−1)`` per transposition; without it the per-row path is modelled at
    :data:`EXCHANGE_ROWS_ESTIMATE` rows.
    """

    def __init__(self, n_qubits: int, model: PerformanceModel | None = None,
                 *, single_pass_mixer: bool = False, n_shards: int = 1,
                 n_workers: int = 1, coalesced_exchange: bool = False) -> None:
        self.model = model if model is not None else PerformanceModel()
        self.n_qubits = n_qubits
        self.states = self.model.local_states(n_qubits, 1)
        self.single_pass_mixer = bool(single_pass_mixer)
        self.n_shards = max(1, int(n_shards))
        self.n_workers = max(1, int(n_workers))
        self.coalesced_exchange = bool(coalesced_exchange)

    def exchange_bytes(self, n_trotters: int = 1) -> int:
        """Slab-exchange cost of one mixer application across the shards."""
        k = self.n_shards
        if k <= 1:
            return 0
        sb = self.model.state_bytes
        # two transpositions (relabel in, relabel out), each swapping the
        # off-diagonal (K−1)/K fraction of the state between shard pairs
        slab = 2 * (self.states - self.states // k) * sb
        messages = 2 * k * (k - 1)
        if not self.coalesced_exchange:
            messages *= EXCHANGE_ROWS_ESTIMATE
        return (slab + messages * MESSAGE_OVERHEAD_BYTES) * max(1, n_trotters)

    # -- per-op prices ---------------------------------------------------------
    def stage_bytes(self) -> int:
        """Writing the staged ``|+>`` block (common to every plan)."""
        return self.states * self.model.state_bytes

    def _split(self, compute_bytes: int) -> int:
        """Ceil-divide compute traffic across the parallel shard workers."""
        w = self.n_workers
        return -(-int(compute_bytes) // w)

    def op_bytes(self, op: PlanOp) -> int:
        sb = self.model.state_bytes
        db = self.model.diag_bytes
        states = self.states
        phase = states * (2 * sb + db)  # numerator of phase_time
        # streamed state sweeps per mixer: the tiled single-pass kernels
        # touch the block ~twice (read + write); multi-pass kernels once per
        # qubit rotation (numerator of mixer_compute_time)
        mixer_sweeps = 2 if self.single_pass_mixer else self.n_qubits
        mixer = mixer_sweeps * 2 * sb * states
        expectation = states * (sb + db)
        if isinstance(op, (PhaseOp, MergedPhaseOp)):
            return self._split(phase)
        if isinstance(op, InitialPhaseOp):
            # the staging write (already priced) doubles as the phase write;
            # only the diagonal read is extra
            return self._split(states * db)
        if isinstance(op, (MixerOp, MergedMixerOp)):
            return (self._split(mixer * op.n_trotters)
                    + self.exchange_bytes(op.n_trotters))
        if isinstance(op, FusedPhaseMixerOp):
            # phase rides the first mixer pass: the read-modify-write
            # disappears, the diagonal read remains
            return (self._split(mixer * op.n_trotters + states * db)
                    + self.exchange_bytes(op.n_trotters))
        if isinstance(op, FusedMixerExpectationOp):
            extra_diag = states * db if op.with_phase else 0
            # expectation reads the ping-pong buffer directly: the mixer's
            # final copy-back (one state write) is saved
            return (self._split(mixer * op.n_trotters + extra_diag
                                + expectation - states * sb)
                    + self.exchange_bytes(op.n_trotters))
        if isinstance(op, ExpectationOp):
            return self._split(expectation)
        return self._split(phase)  # unknown future op: assume one streaming sweep

    def plan_bytes(self, ops: tuple[PlanOp, ...]) -> int:
        """Total traffic of staging plus every op in the stream."""
        return self.stage_bytes() + sum(self.op_bytes(op) for op in ops)

    def plan_time(self, ops: tuple[PlanOp, ...]) -> float:
        """Plan traffic over the modelled device bandwidth, in seconds."""
        return self.plan_bytes(ops) / self.model.topology.gpu_memory_bandwidth


def order_structural_passes(
        passes: tuple[RewritePass, ...], ops: tuple[PlanOp, ...],
        simulator: Any) -> tuple[RewritePass, ...]:
    """Pick the cheapest application order for the structural passes.

    Scores the op stream each permutation of ``passes`` produces with
    :class:`PlanCostModel` and returns the winning permutation.  Ties keep
    the earliest permutation — i.e. the declared order — which also covers
    simulators the model cannot price (no ``n_qubits``).
    """
    n_qubits = getattr(simulator, "n_qubits", None)
    if n_qubits is None or len(passes) < 2:
        return passes
    model = PlanCostModel(
        n_qubits,
        single_pass_mixer=bool(getattr(simulator, "supports_single_pass",
                                       False)),
        n_shards=int(getattr(simulator, "n_shards", 1)),
        n_workers=int(getattr(simulator, "n_shard_workers", 1)),
        coalesced_exchange=bool(getattr(simulator,
                                        "supports_coalesced_exchange", False)))
    best_order = passes
    best_cost: int | None = None
    for perm in permutations(passes):
        rewritten = ops
        for rewrite in perm:
            rewritten, _ = rewrite.run(rewritten, simulator)
        cost = model.plan_bytes(rewritten)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_order = perm
    return tuple(best_order)
