"""MPI-like communicator abstraction and an in-process threaded implementation.

The paper's distributed simulation (Sec. III-C) runs one process per GPU and
communicates through MPI collectives (``MPI_Alltoall``) or cuStateVec's
peer-to-peer index-swap path.  Neither MPI nor GPUs are available in this
environment, so this module provides the substitute substrate: a
:class:`Communicator` interface with the collectives the simulator needs, and
:class:`ThreadCluster` / :class:`ThreadCommunicator`, which execute an SPMD
function on ``K`` Python threads over shared memory.  NumPy releases the GIL
inside its kernels, so the threads genuinely overlap on multi-core hosts, and
— more importantly for the reproduction — the simulator code is written
exactly as it would be against mpi4py (per-rank slices, explicit collectives,
no shared state outside the communicator).
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

__all__ = ["Communicator", "ThreadCommunicator", "ThreadCluster"]


class Communicator(abc.ABC):
    """Minimal MPI-like communicator: the collectives Algorithm 4 relies on."""

    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This process's rank in [0, size)."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronize all ranks."""

    @abc.abstractmethod
    def alltoall(self, sendbuf: np.ndarray) -> np.ndarray:
        """All-to-all exchange of equal-size subchunks.

        ``sendbuf`` must have a length divisible by ``size``; subchunk ``j`` of
        this rank's buffer is delivered to rank ``j``, which receives it as
        subchunk ``rank`` of its result (the matrix-transposition semantics of
        ``MPI_Alltoall`` described in the paper).
        """

    @abc.abstractmethod
    def allreduce_sum(self, value: float | np.ndarray) -> float | np.ndarray:
        """Sum a scalar (or array, elementwise) over all ranks."""

    @abc.abstractmethod
    def allgather(self, sendbuf: np.ndarray) -> list[np.ndarray]:
        """Gather each rank's buffer on every rank (list indexed by rank)."""

    @abc.abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast a Python object from ``root`` to all ranks."""

    @abc.abstractmethod
    def sendrecv(self, sendbuf: np.ndarray, peer: int) -> np.ndarray:
        """Exchange buffers with a single peer rank (used by the index-swap path)."""


class _SharedState:
    """Shared rendezvous state owned by a :class:`ThreadCluster`."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.reduce_slots: list[Any] = [None] * size
        self.lock = threading.Lock()


class ThreadCommunicator(Communicator):
    """Communicator backed by shared memory and a thread barrier."""

    def __init__(self, rank: int, shared: _SharedState) -> None:
        self._rank = rank
        self._shared = shared

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._shared.size

    def barrier(self) -> None:
        self._shared.barrier.wait()

    # -- collectives ---------------------------------------------------------
    def alltoall(self, sendbuf: np.ndarray) -> np.ndarray:
        size = self.size
        sendbuf = np.ascontiguousarray(sendbuf)
        if sendbuf.shape[0] % size != 0:
            raise ValueError(
                f"alltoall buffer length {sendbuf.shape[0]} not divisible by {size} ranks"
            )
        chunk = sendbuf.shape[0] // size
        self._shared.slots[self._rank] = sendbuf
        self.barrier()
        recvbuf = np.empty_like(sendbuf)
        for peer in range(size):
            peer_buf = self._shared.slots[peer]
            recvbuf[peer * chunk:(peer + 1) * chunk] = \
                peer_buf[self._rank * chunk:(self._rank + 1) * chunk]
        self.barrier()
        # Each rank clears only its own slot: writing another rank's entry (or
        # replacing the list) here would race with that rank already entering
        # its next collective.
        self._shared.slots[self._rank] = None
        return recvbuf

    def allreduce_sum(self, value: float | np.ndarray) -> float | np.ndarray:
        self._shared.reduce_slots[self._rank] = value
        self.barrier()
        acc = self._shared.reduce_slots[0]
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        for peer in range(1, self.size):
            acc = acc + self._shared.reduce_slots[peer]
        self.barrier()
        self._shared.reduce_slots[self._rank] = None
        return acc

    def allgather(self, sendbuf: np.ndarray) -> list[np.ndarray]:
        self._shared.slots[self._rank] = np.ascontiguousarray(sendbuf)
        self.barrier()
        gathered = [np.array(self._shared.slots[peer], copy=True) for peer in range(self.size)]
        self.barrier()
        self._shared.slots[self._rank] = None
        return gathered

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise ValueError(f"invalid root {root}")
        if self._rank == root:
            self._shared.slots[root] = value
        self.barrier()
        out = self._shared.slots[root]
        self.barrier()
        if self._rank == root:
            self._shared.slots[root] = None
        return out

    def sendrecv(self, sendbuf: np.ndarray, peer: int) -> np.ndarray:
        if not 0 <= peer < self.size:
            raise ValueError(f"invalid peer rank {peer}")
        if peer == self._rank:
            return np.array(sendbuf, copy=True)
        self._shared.slots[self._rank] = np.ascontiguousarray(sendbuf)
        self.barrier()
        out = np.array(self._shared.slots[peer], copy=True)
        self.barrier()
        self._shared.slots[self._rank] = None
        return out


class ThreadCluster:
    """Runs an SPMD function on ``size`` threads, one per virtual rank.

    Example
    -------
    >>> cluster = ThreadCluster(4)
    >>> def spmd(comm):
    ...     return comm.allreduce_sum(comm.rank)
    >>> cluster.run(spmd)
    [6, 6, 6, 6]
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("cluster size must be positive")
        self.size = int(size)

    def run(self, fn: Callable[..., Any],
            per_rank_args: Sequence[tuple] | None = None) -> list[Any]:
        """Execute ``fn(comm, *args)`` on every rank and return per-rank results.

        Exceptions raised by any rank are re-raised in the caller (after all
        threads have finished) so failures do not deadlock the barrier.
        """
        shared = _SharedState(self.size)
        results: list[Any] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size

        def worker(rank: int) -> None:
            comm = ThreadCommunicator(rank, shared)
            args = per_rank_args[rank] if per_rank_args is not None else ()
            try:
                results[rank] = fn(comm, *args)
            except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
                errors[rank] = exc
                shared.barrier.abort()

        threads = [threading.Thread(target=worker, args=(r,), daemon=True)
                   for r in range(self.size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for exc in errors:
            if exc is not None:
                raise exc
        return results
