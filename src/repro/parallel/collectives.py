"""All-to-all exchange algorithms with traffic accounting.

``MPI_Alltoall`` is the dominant cost of the distributed simulation
(Sec. III-C); the paper notes that many algorithms exist for it, each with its
own trade-offs, and that it uses the out-of-the-box Cray MPICH implementation.
This module implements the three classic algorithms — direct pairwise
exchange, ring, and Bruck — in *driver* form: given the list of every rank's
send buffer, they produce every rank's receive buffer and a
:class:`TrafficTrace` recording every message (source, destination, bytes,
round).  The trace feeds the communication ablation benchmark and the
performance model used to regenerate the Fig. 5 weak-scaling curves.

All algorithms implement the same transposition semantics: subchunk ``j`` of
rank ``i``'s send buffer becomes subchunk ``i`` of rank ``j``'s receive
buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Message",
    "TrafficTrace",
    "alltoall_direct",
    "alltoall_pairwise",
    "alltoall_ring",
    "alltoall_bruck",
    "alltoall",
    "ALLTOALL_ALGORITHMS",
    "allgather_buffers",
    "allreduce_sum_buffers",
]


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer within a collective."""

    source: int
    dest: int
    nbytes: int
    round: int


@dataclass
class TrafficTrace:
    """Record of all messages of a collective, with simple aggregate queries."""

    messages: list[Message] = field(default_factory=list)

    def add(self, source: int, dest: int, nbytes: int, round_: int) -> None:
        """Record one message (self-sends are not recorded)."""
        if source != dest and nbytes > 0:
            self.messages.append(Message(source, dest, int(nbytes), round_))

    @property
    def total_bytes(self) -> int:
        """Total bytes crossing between distinct ranks."""
        return sum(m.nbytes for m in self.messages)

    @property
    def num_rounds(self) -> int:
        """Number of communication rounds (latency terms)."""
        return max((m.round for m in self.messages), default=-1) + 1

    @property
    def num_messages(self) -> int:
        """Number of point-to-point messages."""
        return len(self.messages)

    def max_bytes_per_rank(self) -> int:
        """Largest number of bytes sent by any single rank (the bottleneck rank)."""
        per_rank: dict[int, int] = {}
        for m in self.messages:
            per_rank[m.source] = per_rank.get(m.source, 0) + m.nbytes
        return max(per_rank.values(), default=0)


def _validate(buffers: list[np.ndarray]) -> tuple[int, int]:
    size = len(buffers)
    if size == 0:
        raise ValueError("alltoall needs at least one rank")
    length = buffers[0].shape[0]
    for r, buf in enumerate(buffers):
        if buf.ndim != 1:
            raise ValueError(f"rank {r} buffer must be one-dimensional")
        if buf.shape[0] != length:
            raise ValueError("all ranks must supply equal-length buffers")
    if length % size != 0:
        raise ValueError(f"buffer length {length} not divisible by {size} ranks")
    return size, length // size


def alltoall_direct(buffers: list[np.ndarray]) -> tuple[list[np.ndarray], TrafficTrace]:
    """Direct algorithm: every rank sends to every other rank in one round."""
    size, chunk = _validate(buffers)
    trace = TrafficTrace()
    out = [np.empty_like(buffers[r]) for r in range(size)]
    for src in range(size):
        for dst in range(size):
            seg = buffers[src][dst * chunk:(dst + 1) * chunk]
            out[dst][src * chunk:(src + 1) * chunk] = seg
            trace.add(src, dst, seg.nbytes, 0)
    return out, trace


def alltoall_pairwise(buffers: list[np.ndarray]) -> tuple[list[np.ndarray], TrafficTrace]:
    """Pairwise-exchange algorithm: ``size−1`` rounds, round ``k`` pairs ``r ↔ r XOR k``.

    Requires a power-of-two rank count (the XOR pairing), which always holds
    for state-vector slicing (K = 2^k GPUs).
    """
    size, chunk = _validate(buffers)
    if size & (size - 1):
        raise ValueError("pairwise alltoall requires a power-of-two number of ranks")
    trace = TrafficTrace()
    out = [np.empty_like(buffers[r]) for r in range(size)]
    for r in range(size):  # local copy (no traffic)
        out[r][r * chunk:(r + 1) * chunk] = buffers[r][r * chunk:(r + 1) * chunk]
    for round_ in range(1, size):
        for src in range(size):
            dst = src ^ round_
            seg = buffers[src][dst * chunk:(dst + 1) * chunk]
            out[dst][src * chunk:(src + 1) * chunk] = seg
            trace.add(src, dst, seg.nbytes, round_ - 1)
    return out, trace


def alltoall_ring(buffers: list[np.ndarray]) -> tuple[list[np.ndarray], TrafficTrace]:
    """Ring algorithm: round ``k`` sends the chunk destined ``k`` hops away."""
    size, chunk = _validate(buffers)
    trace = TrafficTrace()
    out = [np.empty_like(buffers[r]) for r in range(size)]
    for r in range(size):
        out[r][r * chunk:(r + 1) * chunk] = buffers[r][r * chunk:(r + 1) * chunk]
    for round_ in range(1, size):
        for src in range(size):
            dst = (src + round_) % size
            seg = buffers[src][dst * chunk:(dst + 1) * chunk]
            out[dst][src * chunk:(src + 1) * chunk] = seg
            trace.add(src, dst, seg.nbytes, round_ - 1)
    return out, trace


def alltoall_bruck(buffers: list[np.ndarray]) -> tuple[list[np.ndarray], TrafficTrace]:
    """Bruck algorithm: ``log2(size)`` rounds, each moving half of the data.

    Trades bandwidth (each element moves up to log2(K) times) for latency
    (only log2(K) message rounds) — the classic choice for small messages.
    Requires a power-of-two rank count.
    """
    size, chunk = _validate(buffers)
    if size & (size - 1):
        raise ValueError("Bruck alltoall requires a power-of-two number of ranks")
    trace = TrafficTrace()
    # Phase 1: local rotation so that rank r's chunk for destination (r+j) sits
    # at position j.
    work = []
    for r in range(size):
        rotated = np.concatenate([buffers[r][((r + j) % size) * chunk:((r + j) % size + 1) * chunk]
                                  for j in range(size)])
        work.append(rotated)
    # Phase 2: log2(size) exchange rounds.  In round t (bit value b = 2^t),
    # every rank sends the blocks whose position has bit t set to rank
    # (r + b) % size.
    n_rounds = size.bit_length() - 1
    for t in range(n_rounds):
        b = 1 << t
        new_work = [w.copy() for w in work]
        for src in range(size):
            dst = (src + b) % size
            nbytes = 0
            for j in range(size):
                if j & b:
                    seg = work[src][j * chunk:(j + 1) * chunk]
                    new_work[dst][j * chunk:(j + 1) * chunk] = seg
                    nbytes += seg.nbytes
            trace.add(src, dst, nbytes, t)
        work = new_work
    # Phase 3: final local inverse rotation — block j on rank r currently holds
    # the data from rank (r - j) % size destined to r; place it at source order.
    out = [np.empty_like(buffers[r]) for r in range(size)]
    for r in range(size):
        for j in range(size):
            src = (r - j) % size
            out[r][src * chunk:(src + 1) * chunk] = work[r][j * chunk:(j + 1) * chunk]
    return out, trace


ALLTOALL_ALGORITHMS = {
    "direct": alltoall_direct,
    "pairwise": alltoall_pairwise,
    "ring": alltoall_ring,
    "bruck": alltoall_bruck,
}


def alltoall(buffers: list[np.ndarray],
             algorithm: str = "direct") -> tuple[list[np.ndarray], TrafficTrace]:
    """Dispatch to one of the registered alltoall algorithms."""
    if algorithm not in ALLTOALL_ALGORITHMS:
        raise ValueError(
            f"unknown alltoall algorithm {algorithm!r}; available: {sorted(ALLTOALL_ALGORITHMS)}"
        )
    return ALLTOALL_ALGORITHMS[algorithm](buffers)


def allgather_buffers(buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Driver-style allgather: every rank receives the concatenation of all buffers."""
    if not buffers:
        raise ValueError("allgather needs at least one rank")
    full = np.concatenate(buffers)
    return [full.copy() for _ in buffers]


def allreduce_sum_buffers(values: list[float | np.ndarray]) -> list[float | np.ndarray]:
    """Driver-style allreduce(sum): every rank receives the sum of all values."""
    if not values:
        raise ValueError("allreduce needs at least one rank")
    acc = values[0]
    if isinstance(acc, np.ndarray):
        acc = acc.copy()
    for v in values[1:]:
        acc = acc + v
    return [acc.copy() if isinstance(acc, np.ndarray) else acc for _ in values]
