"""Cluster topology description (nodes × GPUs, NVLink vs interconnect).

Models the machine layout relevant to the paper's distributed experiments:
Polaris compute nodes with 4 NVIDIA A100 GPUs each, NVLink within a node and
a Slingshot-class interconnect between nodes, where inter-node transfers from
GPU memory must additionally be staged through the host unless the
communication library uses GPU-direct paths (the distinction the paper
identifies as the reason the cuStateVec communication backend beats plain
MPI_Alltoall in Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterTopology", "POLARIS_LIKE", "SINGLE_NODE_DGX"]


@dataclass(frozen=True)
class ClusterTopology:
    """Static description of the virtual cluster used by the performance model.

    Bandwidths are unidirectional, in bytes/second; latencies in seconds.
    """

    gpus_per_node: int
    #: peer-to-peer GPU bandwidth within a node (NVLink)
    intra_node_bandwidth: float
    #: network bandwidth between nodes, per GPU/NIC pair
    inter_node_bandwidth: float
    #: host staging bandwidth (GPU->CPU->NIC) used when GPU-direct is unavailable
    host_staging_bandwidth: float
    #: per-message latency within a node
    intra_node_latency: float
    #: per-message latency between nodes
    inter_node_latency: float
    #: GPU HBM bandwidth (bytes/s), used for the local kernel cost model
    gpu_memory_bandwidth: float
    #: GPU memory capacity in bytes (sets the largest local slice)
    gpu_memory_capacity: float

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        for name in ("intra_node_bandwidth", "inter_node_bandwidth",
                     "host_staging_bandwidth", "gpu_memory_bandwidth",
                     "gpu_memory_capacity"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("intra_node_latency", "inter_node_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def node_of(self, rank: int) -> int:
        """Node index hosting the given GPU rank."""
        if rank < 0:
            raise ValueError("rank must be non-negative")
        return rank // self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True if the two ranks share a node (NVLink-connected)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def num_nodes(self, n_ranks: int) -> int:
        """Number of nodes needed to host ``n_ranks`` GPUs."""
        return -(-n_ranks // self.gpus_per_node)

    def link_bandwidth(self, rank_a: int, rank_b: int, *, gpu_direct: bool) -> float:
        """Effective bandwidth of a transfer between two ranks.

        Intra-node traffic uses NVLink when ``gpu_direct`` is true and host
        staging otherwise; inter-node traffic uses the NIC bandwidth, reduced
        to the host-staging bandwidth when the data must bounce through the
        CPU (the paper's ``MPI_GPU_SUPPORT_ENABLED`` discussion).
        """
        if self.same_node(rank_a, rank_b):
            return self.intra_node_bandwidth if gpu_direct else self.host_staging_bandwidth
        if gpu_direct:
            return self.inter_node_bandwidth
        return min(self.inter_node_bandwidth, self.host_staging_bandwidth)

    def link_latency(self, rank_a: int, rank_b: int) -> float:
        """Per-message latency between two ranks."""
        return self.intra_node_latency if self.same_node(rank_a, rank_b) else self.inter_node_latency


#: Topology calibrated to the paper's Polaris runs: 4×A100-40GB per node,
#: NVLink ~300 GB/s effective, ~25 GB/s per-GPU network injection, ~20 GB/s
#: host staging (PCIe + copies), HBM ~1.5 TB/s.
POLARIS_LIKE = ClusterTopology(
    gpus_per_node=4,
    intra_node_bandwidth=300e9,
    inter_node_bandwidth=25e9,
    host_staging_bandwidth=20e9,
    intra_node_latency=5e-6,
    inter_node_latency=20e-6,
    gpu_memory_bandwidth=1.5e12,
    gpu_memory_capacity=40e9,
)

#: A single fat node with 8 GPUs and 80 GB each (DGX-like), used in tests and
#: the single-node GPU benchmarks.
SINGLE_NODE_DGX = ClusterTopology(
    gpus_per_node=8,
    intra_node_bandwidth=600e9,
    inter_node_bandwidth=50e9,
    host_staging_bandwidth=25e9,
    intra_node_latency=3e-6,
    inter_node_latency=15e-6,
    gpu_memory_bandwidth=2.0e12,
    gpu_memory_capacity=80e9,
)
