"""Analytical performance model for distributed QAOA simulation (Fig. 5).

The paper's weak-scaling experiment (Fig. 5) runs one LABS QAOA layer on
K = 8…128 A100 GPUs with n = 33…37 qubits and compares two communication
back-ends: a custom ``MPI_Alltoall`` implementation and cuStateVec's
distributed index-swap path.  Neither 1024 GPUs nor an HPC interconnect exist
in this environment, so the *figure* is regenerated from a calibrated
analytical model, while the *algorithms* (Algorithm 4 and the index-swap
variant) are executed and verified bit-exactly at small scale by
:mod:`repro.fur.mpi` on the virtual cluster.

Model components (all bandwidth-bound, which profiling in the paper confirms —
"the majority of time being spent in communication"):

* local kernel cost: every mixer rotation and the phase multiply stream the
  local state-vector slice through HBM once (read + write);
* ``mpi_alltoall`` strategy: two all-to-all exchanges per mixer application;
  data is staged through the host (no GPU-direct), and the node's injection
  bandwidth is shared by its GPUs;
* ``cusv_p2p`` strategy: ``k = log2 K`` pairwise index swaps (each moving half
  of the local slice out and back); intra-node partners use NVLink peer-to-peer
  at full rate, inter-node partners use GPU-direct RDMA sharing the NIC.

The constants live in :class:`~repro.parallel.topology.ClusterTopology`;
``POLARIS_LIKE`` is calibrated to the paper's hardware description.
"""

from __future__ import annotations

from dataclasses import dataclass

from .topology import POLARIS_LIKE, ClusterTopology

__all__ = ["LayerTimeBreakdown", "PerformanceModel", "COMMUNICATION_STRATEGIES"]

COMMUNICATION_STRATEGIES = ("mpi_alltoall", "cusv_p2p")


@dataclass(frozen=True)
class LayerTimeBreakdown:
    """Predicted wall-clock time of one distributed QAOA layer."""

    n_qubits: int
    n_ranks: int
    compute_time: float
    communication_time: float
    strategy: str

    @property
    def total_time(self) -> float:
        """Compute + communication (no overlap assumed, as in the paper's runs)."""
        return self.compute_time + self.communication_time

    @property
    def communication_fraction(self) -> float:
        """Fraction of the layer spent communicating."""
        total = self.total_time
        return self.communication_time / total if total > 0 else 0.0


class PerformanceModel:
    """Analytical layer-time model over a :class:`ClusterTopology`."""

    def __init__(self, topology: ClusterTopology = POLARIS_LIKE, *,
                 state_bytes: int = 16, diag_bytes: int = 2,
                 congestion_alpha: float = 0.5) -> None:
        """``diag_bytes`` defaults to 2 (the uint16 compressed LABS diagonal).

        ``congestion_alpha`` models the loss of effective inter-node bandwidth
        under all-to-all traffic as the node count grows (bisection-bandwidth
        contention): the per-GPU network rate is divided by
        ``num_nodes**congestion_alpha``.  Zero disables the effect.
        """
        if state_bytes <= 0 or diag_bytes <= 0:
            raise ValueError("byte sizes must be positive")
        if congestion_alpha < 0:
            raise ValueError("congestion_alpha must be non-negative")
        self.topology = topology
        self.state_bytes = state_bytes
        self.diag_bytes = diag_bytes
        self.congestion_alpha = congestion_alpha

    # -- sizes ----------------------------------------------------------------
    def local_states(self, n_qubits: int, n_ranks: int) -> int:
        """Number of amplitudes per rank."""
        self._validate(n_qubits, n_ranks)
        return (1 << n_qubits) // n_ranks

    def local_slice_bytes(self, n_qubits: int, n_ranks: int) -> float:
        """Bytes of state vector per rank."""
        return self.local_states(n_qubits, n_ranks) * self.state_bytes

    def fits_in_memory(self, n_qubits: int, n_ranks: int) -> bool:
        """Whether the slice plus the cost diagonal fits GPU memory."""
        per_amp = self.state_bytes + self.diag_bytes
        return self.local_states(n_qubits, n_ranks) * per_amp <= self.topology.gpu_memory_capacity

    @staticmethod
    def _validate(n_qubits: int, n_ranks: int) -> None:
        if n_ranks <= 0 or n_ranks & (n_ranks - 1):
            raise ValueError(f"rank count must be a power of two, got {n_ranks}")
        k = n_ranks.bit_length() - 1
        if 2 * k > n_qubits:
            raise ValueError(
                f"Algorithm 4 requires 2*log2(K) <= n (got K={n_ranks}, n={n_qubits})"
            )

    # -- compute --------------------------------------------------------------
    def phase_time(self, n_qubits: int, n_ranks: int) -> float:
        """Time of the phase operator: one fused read-modify-write of the slice."""
        states = self.local_states(n_qubits, n_ranks)
        bytes_moved = states * (2 * self.state_bytes + self.diag_bytes)
        return bytes_moved / self.topology.gpu_memory_bandwidth

    def mixer_compute_time(self, n_qubits: int, n_ranks: int) -> float:
        """Time of the n single-qubit rotations (each streams the slice once)."""
        states = self.local_states(n_qubits, n_ranks)
        bytes_per_rotation = 2 * self.state_bytes * states  # read + write
        return n_qubits * bytes_per_rotation / self.topology.gpu_memory_bandwidth

    def precompute_time(self, n_qubits: int, n_ranks: int, n_terms: int,
                        device: str = "gpu") -> float:
        """Time to precompute the cost-vector slice from ``n_terms`` terms.

        The GPU kernel is memory-bound on the diagonal (one pass per term
        batch); the CPU estimate uses a fixed per-element-per-term throughput
        representative of the vectorized NumPy kernel.
        """
        states = self.local_states(n_qubits, n_ranks)
        if device == "gpu":
            # one read-modify-write of the diagonal per term, 8-byte accumulator
            bytes_moved = n_terms * 2 * 8 * states
            return bytes_moved / self.topology.gpu_memory_bandwidth
        if device == "cpu":
            elements_per_second = 2.0e8  # measured order of magnitude for the NumPy kernel
            return n_terms * states / elements_per_second
        raise ValueError(f"unknown device {device!r}")

    # -- communication ---------------------------------------------------------
    def _congestion_factor(self, n_ranks: int) -> float:
        """Bandwidth-derating factor for all-to-all traffic across many nodes."""
        nodes = max(1, self.topology.num_nodes(n_ranks))
        return float(nodes) ** self.congestion_alpha

    def _exchange_time(self, n_qubits: int, n_ranks: int, *, gpu_direct: bool) -> float:
        """Time of one full state-vector reshuffle (alltoall-equivalent volume).

        Every rank exchanges ``(K−1)/K`` of its slice; the fraction of that
        traffic whose peer shares the node moves over NVLink (or host staging
        when ``gpu_direct`` is false), the rest crosses the network sharing the
        node's injection bandwidth and suffering the congestion derating.
        """
        topo = self.topology
        if n_ranks == 1:
            return 0.0
        slice_bytes = self.local_slice_bytes(n_qubits, n_ranks)
        chunk = slice_bytes / n_ranks
        gpus = min(topo.gpus_per_node, n_ranks)
        intra_peers = gpus - 1
        inter_peers = n_ranks - gpus
        if gpu_direct:
            intra_bw = topo.intra_node_bandwidth
            inter_bw = topo.inter_node_bandwidth / gpus / self._congestion_factor(n_ranks)
        else:
            # Staged through the host even within the node (the paper's
            # observation about MPI without GPU support), and the host link is
            # shared by the node's GPUs.
            intra_bw = topo.host_staging_bandwidth / gpus
            inter_bw = min(topo.inter_node_bandwidth, topo.host_staging_bandwidth) \
                / gpus / self._congestion_factor(n_ranks)
        time = intra_peers * (chunk / intra_bw + topo.intra_node_latency)
        time += inter_peers * (chunk / inter_bw + topo.inter_node_latency)
        return time

    def alltoall_time(self, n_qubits: int, n_ranks: int) -> float:
        """One staged MPI_Alltoall (no GPU-direct transport)."""
        return self._exchange_time(n_qubits, n_ranks, gpu_direct=False)

    def index_swap_time(self, n_qubits: int, n_ranks: int) -> float:
        """cuStateVec-style distributed index swap of the k global qubits.

        The swap moves the same aggregate volume as the two Alltoall calls of
        Algorithm 4 (the global qubits are exchanged out and back), but over
        peer-to-peer NVLink / GPU-direct RDMA transports, which is what gives
        the cuStateVec backend its lower communication overhead in Fig. 5.
        """
        return 2 * self._exchange_time(n_qubits, n_ranks, gpu_direct=True)

    def communication_time(self, n_qubits: int, n_ranks: int, strategy: str) -> float:
        """Total mixer communication time per layer for the chosen strategy."""
        if strategy == "mpi_alltoall":
            return 2 * self.alltoall_time(n_qubits, n_ranks)
        if strategy == "cusv_p2p":
            return self.index_swap_time(n_qubits, n_ranks)
        raise ValueError(
            f"unknown communication strategy {strategy!r}; choose from {COMMUNICATION_STRATEGIES}"
        )

    # -- end-to-end -------------------------------------------------------------
    def layer_time(self, n_qubits: int, n_ranks: int,
                   strategy: str = "mpi_alltoall") -> LayerTimeBreakdown:
        """Predicted time of one full QAOA layer (phase + mixer + communication)."""
        compute = self.phase_time(n_qubits, n_ranks) + self.mixer_compute_time(n_qubits, n_ranks)
        comm = self.communication_time(n_qubits, n_ranks, strategy)
        return LayerTimeBreakdown(n_qubits=n_qubits, n_ranks=n_ranks,
                                  compute_time=compute, communication_time=comm,
                                  strategy=strategy)

    def weak_scaling(self, rank_counts: list[int], local_qubits: int,
                     strategy: str = "mpi_alltoall") -> list[LayerTimeBreakdown]:
        """Weak-scaling sweep: fixed amplitudes per GPU, growing GPU count.

        ``local_qubits`` is the per-rank problem size (the paper uses 30 local
        qubits, i.e. n = 33 at K = 8 up to n = 37 at K = 128).
        """
        out = []
        for k_ranks in rank_counts:
            if k_ranks <= 0 or k_ranks & (k_ranks - 1):
                raise ValueError(f"rank counts must be powers of two, got {k_ranks}")
            n = local_qubits + (k_ranks.bit_length() - 1)
            out.append(self.layer_time(n, k_ranks, strategy))
        return out
