"""Virtual-cluster substrate: communicators, collectives, topology, perf model.

Substitutes for the MPI + multi-GPU environment of the paper's distributed
experiments (Sec. III-C, Fig. 5): SPMD execution on threads over shared
memory, driver-level collective algorithms with traffic accounting, and an
analytical performance model calibrated to the paper's hardware description.
"""

from .collectives import (
    ALLTOALL_ALGORITHMS,
    Message,
    TrafficTrace,
    allgather_buffers,
    allreduce_sum_buffers,
    alltoall,
    alltoall_bruck,
    alltoall_direct,
    alltoall_pairwise,
    alltoall_ring,
)
from .communicator import Communicator, ThreadCluster, ThreadCommunicator
from .perfmodel import COMMUNICATION_STRATEGIES, LayerTimeBreakdown, PerformanceModel
from .topology import POLARIS_LIKE, SINGLE_NODE_DGX, ClusterTopology

__all__ = [
    "Communicator",
    "ThreadCommunicator",
    "ThreadCluster",
    "Message",
    "TrafficTrace",
    "alltoall",
    "alltoall_direct",
    "alltoall_pairwise",
    "alltoall_ring",
    "alltoall_bruck",
    "ALLTOALL_ALGORITHMS",
    "allgather_buffers",
    "allreduce_sum_buffers",
    "ClusterTopology",
    "POLARIS_LIKE",
    "SINGLE_NODE_DGX",
    "PerformanceModel",
    "LayerTimeBreakdown",
    "COMMUNICATION_STRATEGIES",
]
