"""Conversion of quantum circuits into tensor networks.

A circuit amplitude ``<y| U |initial>`` is expressed as a closed tensor
network: one rank-1 tensor per qubit for the initial state, one rank-2k tensor
per k-qubit gate, and one rank-1 projection tensor per qubit for the output
bitstring.  Contracting the network over all indices yields the amplitude —
the same quantity cuTensorNet/QTensor compute in the Fig. 3 comparison.

For deep QAOA circuits on densely-connected problems (LABS), every output
index is causally connected to every input index after a single phase-operator
layer; the contraction width therefore approaches ``n`` and the tensor-network
approach loses its usual shallow-circuit advantage.  The
:func:`~repro.tensornet.contraction.contraction_width` estimator exposes this
effect quantitatively.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..gates.circuit import QuantumCircuit
from ..gates.gate import Gate
from .tensor import Tensor

__all__ = ["TensorNetwork", "circuit_to_network"]


class TensorNetwork:
    """A list of tensors plus bookkeeping of index labels."""

    def __init__(self, tensors: Sequence[Tensor] | None = None) -> None:
        self.tensors: list[Tensor] = list(tensors) if tensors is not None else []
        self._next_index = 0
        for t in self.tensors:
            for i in t.indices:
                self._next_index = max(self._next_index, i + 1)

    def new_index(self) -> int:
        """Allocate a fresh index label."""
        idx = self._next_index
        self._next_index += 1
        return idx

    def add(self, tensor: Tensor) -> None:
        """Add a tensor to the network."""
        self.tensors.append(tensor)
        for i in tensor.indices:
            self._next_index = max(self._next_index, i + 1)

    @property
    def num_tensors(self) -> int:
        """Number of tensors currently in the network."""
        return len(self.tensors)

    def all_indices(self) -> set[int]:
        """Set of all index labels appearing in the network."""
        out: set[int] = set()
        for t in self.tensors:
            out.update(t.indices)
        return out

    def open_indices(self) -> list[int]:
        """Indices appearing in exactly one tensor (uncontracted legs)."""
        counts: dict[int, int] = {}
        for t in self.tensors:
            for i in t.indices:
                counts[i] = counts.get(i, 0) + 1
        return sorted(i for i, c in counts.items() if c == 1)

    def index_graph(self):
        """networkx graph whose nodes are indices, connected if they co-occur in a tensor.

        This is the "line graph" view used by elimination-order heuristics.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.all_indices())
        for t in self.tensors:
            idx = list(t.indices)
            for a in range(len(idx)):
                for b in range(a + 1, len(idx)):
                    g.add_edge(idx[a], idx[b])
        return g


def _initial_state_vectors(kind: str) -> np.ndarray:
    if kind == "zero":
        return np.array([1.0, 0.0], dtype=np.complex128)
    if kind == "plus":
        return np.array([1.0, 1.0], dtype=np.complex128) / np.sqrt(2.0)
    raise ValueError(f"unknown initial state {kind!r} (use 'zero' or 'plus')")


def circuit_to_network(circuit: QuantumCircuit,
                       output_bits: Sequence[int] | None = None,
                       *, initial_state: str = "zero") -> TensorNetwork:
    """Build the closed tensor network of the amplitude ``<output| circuit |initial>``.

    Parameters
    ----------
    circuit:
        The circuit to convert.
    output_bits:
        Little-endian output bitstring (entry q is the measured value of qubit
        q).  When ``None``, the all-zeros string is used.
    initial_state:
        ``"zero"`` for |0…0> or ``"plus"`` for |+>^n (the QAOA initial state,
        which folds the Hadamard layer into the input tensors).
    """
    n = circuit.n_qubits
    if output_bits is None:
        output_bits = [0] * n
    output_bits = list(output_bits)
    if len(output_bits) != n:
        raise ValueError(f"output bitstring has length {len(output_bits)}, expected {n}")
    if any(b not in (0, 1) for b in output_bits):
        raise ValueError("output bits must be 0/1")

    net = TensorNetwork()
    init = _initial_state_vectors(initial_state)
    # current open index of each qubit worldline
    current: list[int] = []
    for _q in range(n):
        idx = net.new_index()
        current.append(idx)
        net.add(Tensor(init, (idx,)))

    for gate_ in circuit:
        net.add(_gate_tensor(gate_, net, current))

    for q in range(n):
        proj = np.zeros(2, dtype=np.complex128)
        proj[output_bits[q]] = 1.0
        net.add(Tensor(proj, (current[q],)))
    return net


def _gate_tensor(gate_: Gate, net: TensorNetwork, current: list[int]) -> Tensor:
    """Tensor of a gate, wiring its input legs to the qubits' current indices."""
    k = gate_.num_qubits
    in_indices = [current[q] for q in gate_.qubits]
    out_indices = [net.new_index() for _ in range(k)]
    for q, idx in zip(gate_.qubits, out_indices):
        current[q] = idx
    data = gate_.to_matrix().reshape([2] * (2 * k))
    # matrix axes: (out_1 … out_k, in_1 … in_k), first listed qubit = axis 0
    return Tensor(data, tuple(out_indices) + tuple(in_indices))
