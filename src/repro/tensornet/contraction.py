"""Contraction ordering and execution for tensor networks.

Two pieces:

* :func:`greedy_contraction_order` / :func:`contract_network` — a standard
  greedy pairwise contraction: at each step contract the pair of tensors whose
  result is smallest (ties broken by largest size reduction).  This is the
  execution path used by the simulator and the benchmarks.
* :func:`elimination_order` / :func:`contraction_width` — a networkx-based
  min-degree/min-fill vertex-elimination heuristic on the index interaction
  graph, used to *estimate* the contraction width (the log2 of the largest
  intermediate tensor).  For deep LABS QAOA circuits this width approaches
  ``n``, which is the quantitative form of the paper's observation that tensor
  networks lose to state-vector simulation on this workload (Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import TensorNetwork
from .tensor import Tensor, contract_pair

__all__ = [
    "ContractionStep",
    "greedy_contraction_order",
    "contract_network",
    "elimination_order",
    "contraction_width",
]


@dataclass(frozen=True)
class ContractionStep:
    """One pairwise contraction: positions of the two tensors and the result rank."""

    first: int
    second: int
    result_rank: int


def _result_indices(a: Tensor, b: Tensor) -> tuple[int, ...]:
    shared = set(a.indices) & set(b.indices)
    return tuple(i for i in a.indices if i not in shared) + tuple(
        i for i in b.indices if i not in shared
    )


def greedy_contraction_order(network: TensorNetwork) -> list[ContractionStep]:
    """Plan a full contraction with the greedy smallest-result heuristic.

    Returns a list of steps over a *working list* of tensors: each step names
    two positions in the current working list; the contraction result is
    appended at the end of the list (positions shift accordingly), matching the
    semantics of :func:`contract_network`.
    """
    working: list[tuple[int, ...]] = [t.indices for t in network.tensors]
    alive: set[int] = set(range(len(working)))
    steps: list[ContractionStep] = []
    if not alive:
        return steps

    def candidate_pairs() -> set[tuple[int, int]]:
        """Pairs of alive tensor positions sharing at least one index."""
        by_index: dict[int, list[int]] = {}
        for pos in alive:
            for i in working[pos]:
                by_index.setdefault(i, []).append(pos)
        pairs: set[tuple[int, int]] = set()
        for positions in by_index.values():
            for a in range(len(positions)):
                for b in range(a + 1, len(positions)):
                    pa, pb = positions[a], positions[b]
                    pairs.add((pa, pb) if pa < pb else (pb, pa))
        return pairs

    while len(alive) > 1:
        pairs = candidate_pairs()
        if not pairs:
            # Disconnected components: outer-product the two smallest tensors.
            by_size = sorted(alive, key=lambda p: (len(working[p]), p))
            pairs = {(by_size[0], by_size[1])}
        best: tuple[float, float, int, int] | None = None
        for pos_a, pos_b in pairs:
            ia, ib = working[pos_a], working[pos_b]
            shared = set(ia) & set(ib)
            out_rank = len(ia) + len(ib) - 2 * len(shared)
            result_size = 2.0 ** out_rank
            reduction = result_size - 2.0 ** len(ia) - 2.0 ** len(ib)
            cand = (result_size, reduction, pos_a, pos_b)
            if best is None or cand[:2] < best[:2]:
                best = cand
        _, _, pos_a, pos_b = best
        ia, ib = working[pos_a], working[pos_b]
        shared = set(ia) & set(ib)
        out = tuple(i for i in ia if i not in shared) + tuple(i for i in ib if i not in shared)
        steps.append(ContractionStep(first=pos_a, second=pos_b, result_rank=len(out)))
        working.append(out)
        alive.discard(pos_a)
        alive.discard(pos_b)
        alive.add(len(working) - 1)
    return steps


def contract_network(network: TensorNetwork,
                     order: list[ContractionStep] | None = None) -> Tensor:
    """Execute a full contraction and return the final tensor (often rank 0)."""
    if network.num_tensors == 0:
        raise ValueError("cannot contract an empty network")
    if order is None:
        order = greedy_contraction_order(network)
    working: list[Tensor | None] = list(network.tensors)
    last: Tensor = working[0]
    for step in order:
        a = working[step.first]
        b = working[step.second]
        if a is None or b is None:
            raise ValueError("contraction order references an already-consumed tensor")
        result = contract_pair(a, b)
        working[step.first] = None
        working[step.second] = None
        working.append(result)
        last = result
    remaining = [t for t in working if t is not None]
    if len(remaining) > 1:
        # Disconnected components: multiply the scalars / outer-product the rest.
        result = remaining[0]
        for t in remaining[1:]:
            result = contract_pair(result, t)
        return result
    return last


def elimination_order(network: TensorNetwork, heuristic: str = "min_degree") -> list[int]:
    """Vertex-elimination order of the index graph (min-degree or min-fill).

    The order is computed on the networkx index-interaction graph; eliminating
    a vertex connects all its neighbours (the standard chordalization step), so
    the maximum clique size encountered bounds the contraction width.
    """
    graph = network.index_graph()
    if heuristic not in ("min_degree", "min_fill"):
        raise ValueError(f"unknown heuristic {heuristic!r}")
    order: list[int] = []
    g = graph.copy()
    while g.number_of_nodes() > 0:
        if heuristic == "min_degree":
            node = min(g.nodes, key=lambda v: (g.degree(v), v))
        else:
            def fill(v):
                nbrs = list(g.neighbors(v))
                missing = 0
                for i in range(len(nbrs)):
                    for j in range(i + 1, len(nbrs)):
                        if not g.has_edge(nbrs[i], nbrs[j]):
                            missing += 1
                return missing
            node = min(g.nodes, key=lambda v: (fill(v), g.degree(v), v))
        nbrs = list(g.neighbors(node))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                g.add_edge(nbrs[i], nbrs[j])
        g.remove_node(node)
        order.append(node)
    return order


def contraction_width(network: TensorNetwork, heuristic: str = "min_degree") -> int:
    """Estimated contraction width: max clique size along the elimination order.

    Equals the treewidth+1 of the index graph when the heuristic order is
    optimal; an upper bound otherwise.  Memory of the contraction scales as
    ``2**width``.
    """
    graph = network.index_graph()
    g = graph.copy()
    width = 0
    for node in elimination_order(network, heuristic=heuristic):
        if node not in g:
            continue
        nbrs = list(g.neighbors(node))
        width = max(width, len(nbrs) + 1)
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                g.add_edge(nbrs[i], nbrs[j])
        g.remove_node(node)
    return width
