"""Tensor-network contraction simulator substrate (cuTensorNet/QTensor baseline)."""

from .contraction import (
    ContractionStep,
    contract_network,
    contraction_width,
    elimination_order,
    greedy_contraction_order,
)
from .backend import QAOATensorNetworkSimulator, TensorNetQAOAResult
from .network import TensorNetwork, circuit_to_network
from .simulator import AmplitudeResult, TensorNetworkSimulator
from .tensor import Tensor, contract_pair

__all__ = [
    "QAOATensorNetworkSimulator",
    "TensorNetQAOAResult",
    "Tensor",
    "contract_pair",
    "TensorNetwork",
    "circuit_to_network",
    "ContractionStep",
    "greedy_contraction_order",
    "contract_network",
    "elimination_order",
    "contraction_width",
    "AmplitudeResult",
    "TensorNetworkSimulator",
]
