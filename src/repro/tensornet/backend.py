"""Tensor-network QAOA backend (an *expectation-only* registry provider).

Wraps :class:`~repro.tensornet.simulator.TensorNetworkSimulator` behind the
fast simulators' constructor/``simulate_qaoa``/``get_*`` API so the
cuTensorNet/QTensor-style baseline participates in the backend registry and
the shared execution engine like every other simulator family.

The tier is deliberately *expectation-only*: a tensor-network contraction
produces one amplitude per network, never a resident state vector, so the
statevector-shaped requests (``simulate_qaoa_batch`` block staging,
``get_statevector``) raise
:class:`~repro.fur.capabilities.UnsupportedCapabilityError` instead of
pretending.  Expectations are served by contracting all ``2^n`` output
amplitudes of the evolved circuit against the cost diagonal — exponential in
``n`` by construction (this backend exists for cross-checking and for the
paper's Fig. 3 scaling story, not for large problems).

Engine integration records the op stream *symbolically*: the kernel-provider
block is a per-row log of phase/mixer angle columns, and the whole
contraction cost is paid in the final ``_block_expectations`` reduction.  The
plan-rewrite passes still apply (zero-angle elimination, commuting merges —
the X mixer is exact under angle addition), shrinking the circuit that gets
contracted.  One greedy contraction order is computed per row and reused for
all ``2^n`` output bitstrings, whose networks share the same index structure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..fur.base import QAOAFastSimulatorBase, validate_angles
from ..fur.capabilities import UnsupportedCapabilityError, require_capability
from ..gates.circuit import QuantumCircuit
from ..gates.compile import compile_mixer_x, compile_phase_separator
from .contraction import greedy_contraction_order
from .network import circuit_to_network
from .simulator import TensorNetworkSimulator

__all__ = ["QAOATensorNetworkSimulator", "TensorNetQAOAResult"]


@dataclass(frozen=True)
class TensorNetQAOAResult:
    """Lazy result of a tensornet QAOA evolution (angles, not a state).

    Contraction is deferred to the ``get_*`` accessors: the evolution itself
    only records the schedule, matching how tensor-network simulators defer
    all work to the amplitude being asked for.
    """

    gammas: tuple[float, ...]
    betas: tuple[float, ...]


@dataclass
class _SymbolicBlock:
    """Kernel-provider block: a log of angle columns instead of amplitudes."""

    rows: int
    #: ordered ("phase" | "mixer", angles-per-row) events
    events: list[tuple[str, np.ndarray]] = field(default_factory=list)


class QAOATensorNetworkSimulator(QAOAFastSimulatorBase):
    """QAOA via tensor-network contraction, registry- and engine-compatible.

    Requires explicit polynomial ``terms`` (the phase separator is compiled
    into diagonal gate tensors term by term; a bare cost diagonal has no
    tensor-network form).  X mixer only, double precision only.
    """

    backend_name = "tensornet"
    capability_tier = "expectation-only"
    supports_fused_engine = True
    mixer_name = "x"
    #: the X mixer is exact under angle addition, so the ReorderCommuting
    #: merge shrinks the contracted circuit without changing the amplitude
    mixer_self_commutes = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 precision: str = "double", optimize: str = "default",
                 width_heuristic: str = "min_degree") -> None:
        if terms is None:
            raise ValueError(
                "the tensornet backend requires explicit polynomial terms "
                "(a bare cost diagonal has no tensor-network form)"
            )
        self._tn = TensorNetworkSimulator(width_heuristic=width_heuristic)
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)

    # -- circuit assembly -----------------------------------------------------
    def _layer_circuits(self, events: Sequence[tuple[str, float]]) -> QuantumCircuit:
        """Compose one row's recorded phase/mixer events into a circuit."""
        qc = QuantumCircuit(self._n_qubits)
        for kind, angle in events:
            if kind == "phase":
                qc = qc.compose(compile_phase_separator(
                    self._terms, float(angle), self._n_qubits,
                    strategy="diagonal"))
            else:
                qc = qc.compose(compile_mixer_x(float(angle), self._n_qubits))
        return qc

    def _all_outputs(self) -> list[list[int]]:
        """Every output bitstring, little-endian (bit q = qubit q), in
        cost-diagonal order."""
        return [[(x >> q) & 1 for q in range(self._n_qubits)]
                for x in range(self._n_states)]

    def _contract_probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """|amplitude|² for every basis state, one contraction per output.

        The greedy contraction order is found once and reused across all
        ``2^n`` outputs: the networks differ only in the rank-1 projection
        tensors' *values*, never in their index structure.
        """
        outputs = self._all_outputs()
        order = greedy_contraction_order(
            circuit_to_network(circuit, outputs[0], initial_state="plus"))
        amps = self._tn.batch_amplitudes(circuit, outputs,
                                         initial_state="plus", order=order)
        return (amps.real ** 2 + amps.imag ** 2).astype(np.float64, copy=False)

    # -- simulation -----------------------------------------------------------
    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None,
                      **kwargs: Any) -> TensorNetQAOAResult:
        """Record the schedule; contraction happens in the ``get_*`` calls."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if sv0 is not None:
            raise ValueError(
                "the tensornet backend cannot start from a custom initial "
                "state (the |+>^n preparation is folded into the input tensors)"
            )
        g, b = validate_angles(gammas, betas)
        return TensorNetQAOAResult(gammas=tuple(float(x) for x in g),
                                   betas=tuple(float(x) for x in b))

    # -- kernel-provider hooks (driven by repro.fur.engine) -------------------
    def _batch_rows(self, remaining: int, memory_budget: float | None) -> int:
        # Symbolic blocks hold angles, not (rows, 2^n) amplitudes — the
        # memory budget never forces a split.
        return remaining

    def _engine_phase_tables(self) -> Any:
        return None  # phase ops are recorded symbolically, never evaluated

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> _SymbolicBlock:
        if sv0 is not None:
            raise ValueError(
                "the tensornet backend cannot start from a custom initial state"
            )
        return _SymbolicBlock(rows=rows)

    def _apply_phase_block(self, block: _SymbolicBlock, gammas: np.ndarray,
                           plan: Any) -> None:
        block.events.append(("phase", np.array(gammas, dtype=np.float64)))

    def _apply_mixer_block(self, block: _SymbolicBlock, betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        # X-mixer factors commute exactly; Trotter slicing is a no-op.
        block.events.append(("mixer", np.array(betas, dtype=np.float64)))

    def _block_expectations(self, block: _SymbolicBlock,
                            costs: np.ndarray) -> np.ndarray:
        out = np.empty(block.rows, dtype=np.float64)
        for r in range(block.rows):
            circuit = self._layer_circuits(
                [(kind, angles[r]) for kind, angles in block.events])
            out[r] = self._contract_probabilities(circuit) @ costs
        return out

    def _block_results(self, block: _SymbolicBlock) -> list[Any]:
        raise UnsupportedCapabilityError(
            "backend 'tensornet' is 'expectation-only' and cannot materialize "
            "per-schedule state results"
        )

    # -- output methods -------------------------------------------------------
    def get_statevector(self, result: TensorNetQAOAResult,
                        **kwargs: Any) -> np.ndarray:
        require_capability(self, "statevector")
        raise AssertionError("unreachable")  # pragma: no cover

    def get_probabilities(self, result: TensorNetQAOAResult,
                          preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Contract |<x|γβ>|² for every basis state ``x``."""
        events = [(kind, angle) for g_l, b_l in zip(result.gammas, result.betas)
                  for kind, angle in (("phase", g_l), ("mixer", b_l))]
        return self._contract_probabilities(self._layer_circuits(events))
