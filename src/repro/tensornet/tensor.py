"""Tensor with named indices — building block of the tensor-network baseline."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Tensor", "contract_pair"]


@dataclass(frozen=True)
class Tensor:
    """A dense tensor with one label per axis.

    Labels are opaque hashable objects (integers in this package); two tensors
    sharing a label share (and can be contracted over) that index.  All indices
    in the quantum-circuit networks have dimension 2.
    """

    data: np.ndarray
    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.ndim != len(self.indices):
            raise ValueError(
                f"tensor of rank {data.ndim} cannot carry {len(self.indices)} index labels"
            )
        if len(set(self.indices)) != len(self.indices):
            raise ValueError(f"repeated index labels in {self.indices}")
        object.__setattr__(self, "data", data)

    @property
    def rank(self) -> int:
        """Number of indices (tensor order)."""
        return len(self.indices)

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    def relabel(self, mapping: dict[int, int]) -> "Tensor":
        """Return a copy with index labels substituted according to ``mapping``."""
        return Tensor(self.data, tuple(mapping.get(i, i) for i in self.indices))

    def transpose_to(self, order: tuple[int, ...]) -> "Tensor":
        """Reorder axes so the index labels appear in the given order."""
        if set(order) != set(self.indices):
            raise ValueError(f"order {order} does not match indices {self.indices}")
        perm = [self.indices.index(i) for i in order]
        return Tensor(np.transpose(self.data, perm), tuple(order))


def contract_pair(a: Tensor, b: Tensor) -> Tensor:
    """Contract two tensors over all shared indices (tensordot under the hood)."""
    shared = [i for i in a.indices if i in b.indices]
    a_axes = [a.indices.index(i) for i in shared]
    b_axes = [b.indices.index(i) for i in shared]
    data = np.tensordot(a.data, b.data, axes=(a_axes, b_axes))
    out_indices = tuple(i for i in a.indices if i not in shared) + tuple(
        i for i in b.indices if i not in shared
    )
    return Tensor(data, out_indices)
