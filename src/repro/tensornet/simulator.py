"""Tensor-network amplitude simulator (the cuTensorNet/QTensor-style baseline).

The Fig. 3 comparison times tensor-network simulators by contracting the
network of a *single probability amplitude* of the QAOA state and dividing by
the number of layers (the paper argues this is a lower bound on the cost of
full state evolution).  This module reproduces exactly that workflow:

* build the amplitude network for a p-layer QAOA circuit,
* find a contraction order (greedy) and report its estimated width,
* contract it to obtain the amplitude.

For correctness, amplitudes are cross-checked against the gate-based
state-vector simulator in the test-suite.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..gates.circuit import QuantumCircuit
from ..gates.qaoa import build_qaoa_circuit
from .contraction import (
    ContractionStep,
    contract_network,
    contraction_width,
    greedy_contraction_order,
)
from .network import TensorNetwork, circuit_to_network

__all__ = ["AmplitudeResult", "TensorNetworkSimulator"]


@dataclass(frozen=True)
class AmplitudeResult:
    """Result of a single-amplitude contraction."""

    amplitude: complex
    contraction_width: int
    num_tensors: int


class TensorNetworkSimulator:
    """Computes circuit amplitudes by tensor-network contraction."""

    def __init__(self, *, width_heuristic: str = "min_degree") -> None:
        self.width_heuristic = width_heuristic

    # -- generic circuits -----------------------------------------------------
    def amplitude(self, circuit: QuantumCircuit, output_bits: Sequence[int] | None = None,
                  *, initial_state: str = "zero",
                  order: list[ContractionStep] | None = None) -> complex:
        """Amplitude ``<output| circuit |initial>`` via greedy contraction."""
        net = circuit_to_network(circuit, output_bits, initial_state=initial_state)
        result = contract_network(net, order)
        if result.rank != 0:
            raise RuntimeError(f"contraction left {result.rank} open indices")
        return complex(result.data)

    def amplitude_with_stats(self, circuit: QuantumCircuit,
                             output_bits: Sequence[int] | None = None,
                             *, initial_state: str = "zero") -> AmplitudeResult:
        """Amplitude plus contraction-width / size statistics."""
        net = circuit_to_network(circuit, output_bits, initial_state=initial_state)
        width = contraction_width(net, heuristic=self.width_heuristic)
        result = contract_network(net, greedy_contraction_order(net))
        return AmplitudeResult(amplitude=complex(result.data),
                               contraction_width=width,
                               num_tensors=net.num_tensors)

    def batch_amplitudes(self, circuit: QuantumCircuit, outputs: Iterable[Sequence[int]],
                         *, initial_state: str = "zero",
                         order: list[ContractionStep] | None = None) -> np.ndarray:
        """Amplitudes for several output bitstrings (one contraction each).

        ``order`` reuses one precomputed contraction order for every output:
        the network's index structure does not depend on *which* bitstring is
        projected out, so a single greedy search amortizes over the batch.
        """
        return np.array(
            [self.amplitude(circuit, bits, initial_state=initial_state, order=order)
             for bits in outputs],
            dtype=np.complex128,
        )

    # -- QAOA-specific convenience --------------------------------------------
    def qaoa_amplitude(self, terms: Iterable[tuple[float, Iterable[int]]],
                       gammas: Sequence[float], betas: Sequence[float], n_qubits: int,
                       output_bits: Sequence[int] | None = None, *,
                       mixer: str = "x", phase_strategy: str = "diagonal") -> complex:
        """Single amplitude of the p-layer QAOA state (Fig. 3 workload).

        The phase separator defaults to the ``diagonal`` (one tensor per term)
        representation, which is the most favourable choice for the
        tensor-network baseline: fewer, though higher-rank, tensors.
        """
        circuit = build_qaoa_circuit(terms, gammas, betas, n_qubits, mixer=mixer,
                                     phase_strategy=phase_strategy,
                                     include_initial_state=False)
        return self.amplitude(circuit, output_bits, initial_state="plus")

    def qaoa_network(self, terms: Iterable[tuple[float, Iterable[int]]],
                     gammas: Sequence[float], betas: Sequence[float], n_qubits: int,
                     output_bits: Sequence[int] | None = None, *,
                     mixer: str = "x", phase_strategy: str = "diagonal") -> TensorNetwork:
        """The amplitude tensor network itself (for width / scaling studies)."""
        circuit = build_qaoa_circuit(terms, gammas, betas, n_qubits, mixer=mixer,
                                     phase_strategy=phase_strategy,
                                     include_initial_state=False)
        return circuit_to_network(circuit, output_bits, initial_state="plus")

    def qaoa_contraction_width(self, terms: Iterable[tuple[float, Iterable[int]]],
                               p: int, n_qubits: int, *, mixer: str = "x",
                               phase_strategy: str = "diagonal") -> int:
        """Estimated contraction width of a depth-p QAOA amplitude network.

        For LABS this approaches ``n`` already at small ``p``, reproducing the
        paper's observation that "deep circuits have optimal contraction order
        that produces contraction width equal to n".
        """
        gammas = [0.1] * p
        betas = [0.1] * p
        net = self.qaoa_network(terms, gammas, betas, n_qubits,
                                mixer=mixer, phase_strategy=phase_strategy)
        return contraction_width(net, heuristic=self.width_heuristic)
