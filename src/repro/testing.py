"""Shared test/benchmark helpers (random problem instances).

Importable as ``repro.testing`` so the test-suite (and downstream users
writing their own tests against the simulators) can generate reproducible
random problems without reaching into pytest ``conftest`` modules — relative
imports of ``conftest`` are not importable under pytest's rootdir rules.
"""

from __future__ import annotations

import numpy as np

from .problems.terms import Term, normalize_terms

__all__ = ["random_terms"]


def random_terms(rng: np.random.Generator, n: int, n_terms: int,
                 max_order: int = 3) -> list[Term]:
    """Random spin-polynomial terms with weights in [-1, 1].

    Each term draws an order uniformly from ``1..max_order`` and a sorted
    tuple of distinct qubit indices; the result is normalized (like-terms
    merged) so it is a valid simulator input.
    """
    terms = []
    for _ in range(n_terms):
        order = int(rng.integers(1, max_order + 1))
        idx = tuple(sorted(rng.choice(n, size=min(order, n), replace=False).tolist()))
        terms.append((float(rng.uniform(-1, 1)), idx))
    return normalize_terms(terms)
