"""Gate library for the gate-based state-vector baseline simulator.

The paper compares the precomputed-diagonal approach against "standard
gate-based simulators such as Qiskit", in which the QAOA phase operator must
be *compiled into gates* and re-applied gate by gate at every layer
(Sec. III).  This package is that baseline, built from scratch: a small gate
IR (:class:`Gate`), a circuit container, a compiler from cost-function terms
to gates, and a state-vector simulator that applies one gate at a time.

A :class:`Gate` stores the acting qubits and either a dense ``(2^k, 2^k)``
unitary or, for diagonal gates, just the length-``2^k`` diagonal.  The matrix
convention: the *first* listed qubit is the most significant bit of the gate's
local basis index, so ``CNOT(control, target)`` has the textbook matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Gate",
    "identity",
    "h",
    "x",
    "y",
    "z",
    "s",
    "t",
    "rx",
    "ry",
    "rz",
    "cnot",
    "cx",
    "cz",
    "swap",
    "rzz",
    "rxx",
    "ryy",
    "xx_plus_yy",
    "multi_rz",
    "global_phase",
    "unitary",
    "diagonal_gate",
]


def _check_unitary(matrix: np.ndarray, atol: float = 1e-10) -> None:
    eye = np.eye(matrix.shape[0])
    if not np.allclose(matrix.conj().T @ matrix, eye, atol=atol):
        raise ValueError("gate matrix is not unitary")


@dataclass(frozen=True)
class Gate:
    """A quantum gate acting on an ordered tuple of qubits.

    Exactly one of ``matrix`` (dense ``(2^k, 2^k)`` unitary) or ``diagonal``
    (length ``2^k`` complex vector) is set; diagonal gates are applied by the
    simulator without building the dense matrix, matching how production
    simulators special-case diagonal gates.
    """

    name: str
    qubits: tuple[int, ...]
    matrix: np.ndarray | None = None
    diagonal: np.ndarray | None = None
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} has repeated qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"gate {self.name} has negative qubit indices {self.qubits}")
        dim = 1 << len(self.qubits)
        if (self.matrix is None) == (self.diagonal is None):
            raise ValueError("exactly one of matrix/diagonal must be provided")
        if self.matrix is not None:
            mat = np.asarray(self.matrix, dtype=np.complex128)
            if mat.shape != (dim, dim):
                raise ValueError(
                    f"gate {self.name} on {len(self.qubits)} qubit(s) needs a "
                    f"{dim}x{dim} matrix, got {mat.shape}"
                )
            object.__setattr__(self, "matrix", mat)
        if self.diagonal is not None:
            diag = np.asarray(self.diagonal, dtype=np.complex128)
            if diag.shape != (dim,):
                raise ValueError(
                    f"gate {self.name} on {len(self.qubits)} qubit(s) needs a "
                    f"length-{dim} diagonal, got {diag.shape}"
                )
            object.__setattr__(self, "diagonal", diag)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_diagonal(self) -> bool:
        """True if the gate is stored (and applied) as a diagonal."""
        return self.diagonal is not None

    def to_matrix(self) -> np.ndarray:
        """Dense matrix form (builds it from the diagonal if needed)."""
        if self.matrix is not None:
            return self.matrix
        return np.diag(self.diagonal)

    def dagger(self) -> "Gate":
        """Hermitian adjoint of the gate."""
        if self.is_diagonal:
            return Gate(self.name + "_dg", self.qubits, diagonal=np.conj(self.diagonal),
                        params=self.params)
        return Gate(self.name + "_dg", self.qubits, matrix=self.matrix.conj().T,
                    params=self.params)

    def on(self, *qubits: int) -> "Gate":
        """Copy of the gate re-targeted to different qubits."""
        if len(qubits) != len(self.qubits):
            raise ValueError(f"gate {self.name} acts on {len(self.qubits)} qubits")
        return Gate(self.name, tuple(qubits), matrix=self.matrix, diagonal=self.diagonal,
                    params=self.params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "diag" if self.is_diagonal else "dense"
        return f"Gate({self.name!r}, qubits={self.qubits}, {kind})"


# ---------------------------------------------------------------------------
# Standard gates
# ---------------------------------------------------------------------------

_H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)


def identity(qubit: int) -> Gate:
    """Single-qubit identity (useful as a placeholder in tests)."""
    return Gate("id", (qubit,), diagonal=np.ones(2, dtype=np.complex128))


def h(qubit: int) -> Gate:
    """Hadamard."""
    return Gate("h", (qubit,), matrix=_H)


def x(qubit: int) -> Gate:
    """Pauli X."""
    return Gate("x", (qubit,), matrix=_X)


def y(qubit: int) -> Gate:
    """Pauli Y."""
    return Gate("y", (qubit,), matrix=_Y)


def z(qubit: int) -> Gate:
    """Pauli Z (diagonal)."""
    return Gate("z", (qubit,), diagonal=np.array([1, -1], dtype=np.complex128))


def s(qubit: int) -> Gate:
    """Phase gate S = diag(1, i)."""
    return Gate("s", (qubit,), diagonal=np.array([1, 1j], dtype=np.complex128))


def t(qubit: int) -> Gate:
    """T gate = diag(1, e^{iπ/4})."""
    return Gate("t", (qubit,), diagonal=np.array([1, np.exp(1j * np.pi / 4)], dtype=np.complex128))


def rx(theta: float, qubit: int) -> Gate:
    """``RX(θ) = exp(-i θ X / 2)``."""
    c, si = np.cos(theta / 2), np.sin(theta / 2)
    mat = np.array([[c, -1j * si], [-1j * si, c]], dtype=np.complex128)
    return Gate("rx", (qubit,), matrix=mat, params=(float(theta),))


def ry(theta: float, qubit: int) -> Gate:
    """``RY(θ) = exp(-i θ Y / 2)``."""
    c, si = np.cos(theta / 2), np.sin(theta / 2)
    mat = np.array([[c, -si], [si, c]], dtype=np.complex128)
    return Gate("ry", (qubit,), matrix=mat, params=(float(theta),))


def rz(theta: float, qubit: int) -> Gate:
    """``RZ(θ) = exp(-i θ Z / 2) = diag(e^{-iθ/2}, e^{iθ/2})`` (diagonal)."""
    diag = np.array([np.exp(-0.5j * theta), np.exp(0.5j * theta)], dtype=np.complex128)
    return Gate("rz", (qubit,), diagonal=diag, params=(float(theta),))


def cnot(control: int, target: int) -> Gate:
    """Controlled-NOT; first qubit is the control."""
    mat = np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
    )
    return Gate("cx", (control, target), matrix=mat)


#: Alias matching common naming.
cx = cnot


def cz(qubit_a: int, qubit_b: int) -> Gate:
    """Controlled-Z (diagonal, symmetric in its qubits)."""
    return Gate("cz", (qubit_a, qubit_b),
                diagonal=np.array([1, 1, 1, -1], dtype=np.complex128))


def swap(qubit_a: int, qubit_b: int) -> Gate:
    """SWAP gate."""
    mat = np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
    )
    return Gate("swap", (qubit_a, qubit_b), matrix=mat)


def rzz(theta: float, qubit_a: int, qubit_b: int) -> Gate:
    """``RZZ(θ) = exp(-i θ Z⊗Z / 2)`` (diagonal two-qubit rotation)."""
    ph = np.exp(-0.5j * theta)
    diag = np.array([ph, np.conj(ph), np.conj(ph), ph], dtype=np.complex128)
    return Gate("rzz", (qubit_a, qubit_b), diagonal=diag, params=(float(theta),))


def rxx(theta: float, qubit_a: int, qubit_b: int) -> Gate:
    """``RXX(θ) = exp(-i θ X⊗X / 2)``."""
    c, si = np.cos(theta / 2), -1j * np.sin(theta / 2)
    mat = np.array(
        [[c, 0, 0, si], [0, c, si, 0], [0, si, c, 0], [si, 0, 0, c]], dtype=np.complex128
    )
    return Gate("rxx", (qubit_a, qubit_b), matrix=mat, params=(float(theta),))


def ryy(theta: float, qubit_a: int, qubit_b: int) -> Gate:
    """``RYY(θ) = exp(-i θ Y⊗Y / 2)``."""
    c = np.cos(theta / 2)
    si = 1j * np.sin(theta / 2)
    mat = np.array(
        [[c, 0, 0, si], [0, c, -si, 0], [0, -si, c, 0], [si, 0, 0, c]], dtype=np.complex128
    )
    return Gate("ryy", (qubit_a, qubit_b), matrix=mat, params=(float(theta),))


def xx_plus_yy(beta: float, qubit_a: int, qubit_b: int) -> Gate:
    """``exp(-i β (X⊗X + Y⊗Y)/2)`` — the XY-mixer two-qubit factor.

    Acts as identity on |00> and |11> and as the rotation
    ``[[cos β, −i sin β], [−i sin β, cos β]]`` on the {|01>, |10>} block, so it
    matches :func:`repro.fur.python.furxy.furxy` exactly.
    """
    c = np.cos(beta)
    si = -1j * np.sin(beta)
    mat = np.array(
        [[1, 0, 0, 0], [0, c, si, 0], [0, si, c, 0], [0, 0, 0, 1]], dtype=np.complex128
    )
    return Gate("xx_plus_yy", (qubit_a, qubit_b), matrix=mat, params=(float(beta),))


def multi_rz(theta: float, qubits: tuple[int, ...]) -> Gate:
    """``exp(-i θ/2 · Z⊗Z⊗…⊗Z)`` on an arbitrary number of qubits (diagonal).

    The diagonal entry for the local basis state with bit pattern ``b`` is
    ``exp(-i θ/2 · (−1)^popcount(b))``.  This is the "one gate per term"
    representation of the phase separator used by the naive (un-compiled)
    baseline; the CNOT-ladder compiler in :mod:`repro.gates.compile` produces
    the equivalent two-qubit-gate decomposition.
    """
    k = len(qubits)
    if k == 0:
        raise ValueError("multi_rz needs at least one qubit; use global_phase for constants")
    dim = 1 << k
    idx = np.arange(dim, dtype=np.uint64)
    parity = (np.bitwise_count(idx) & np.uint64(1)).astype(np.float64)
    sign = 1.0 - 2.0 * parity  # (-1)^popcount
    diag = np.exp(-0.5j * theta * sign)
    return Gate("multi_rz", tuple(qubits), diagonal=diag, params=(float(theta),))


def global_phase(phase: float, qubit: int = 0) -> Gate:
    """``e^{iφ}·I`` applied to one qubit (implements constant cost terms)."""
    diag = np.exp(1j * phase) * np.ones(2, dtype=np.complex128)
    return Gate("gphase", (qubit,), diagonal=diag, params=(float(phase),))


def unitary(matrix: np.ndarray, qubits: tuple[int, ...], name: str = "unitary",
            *, check: bool = True) -> Gate:
    """Wrap an arbitrary dense unitary as a gate (used by the fusion pass)."""
    mat = np.asarray(matrix, dtype=np.complex128)
    if check:
        _check_unitary(mat)
    return Gate(name, tuple(qubits), matrix=mat)


def diagonal_gate(diag: np.ndarray, qubits: tuple[int, ...], name: str = "diag") -> Gate:
    """Wrap an arbitrary diagonal as a gate."""
    return Gate(name, tuple(qubits), diagonal=np.asarray(diag, dtype=np.complex128))
