"""QAOA circuit construction and a gate-based QAOA simulator facade.

:func:`build_qaoa_circuit` assembles the full circuit
``Π_l exp(-i β_l M) exp(-i γ_l C)`` (applied to |+>^n) from compiled phase
separators and mixers.  :class:`QAOAGateBasedSimulator` wraps it behind the
same constructor/`simulate_qaoa`/`get_*` API as the FUR simulators, so the
benchmark harness can swap backends with one argument — this class plays the
role of "Qiskit / cuStateVec (gates)" in Figs. 2–4.

The defining inefficiency is preserved faithfully: the phase separator is
*recompiled and reapplied gate by gate at every layer and at every objective
evaluation*; nothing is cached across layers beyond what a generic circuit
simulator would cache.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..fur.base import QAOAFastSimulatorBase, validate_angles
from ..problems.terms import validate_terms
from .circuit import QuantumCircuit
from .compile import (
    compile_mixer_x,
    compile_mixer_xy_complete,
    compile_mixer_xy_ring,
    compile_phase_separator,
    initial_plus_state_circuit,
)
from .statevector import StatevectorSimulator

__all__ = ["build_qaoa_circuit", "qaoa_layer_circuit", "QAOAGateBasedSimulator"]


_MIXER_COMPILERS = {
    "x": compile_mixer_x,
    "xyring": compile_mixer_xy_ring,
    "xycomplete": compile_mixer_xy_complete,
}


def qaoa_layer_circuit(terms: Iterable[tuple[float, Iterable[int]]],
                       gamma: float, beta: float, n_qubits: int,
                       *, mixer: str = "x",
                       phase_strategy: str = "ladder") -> QuantumCircuit:
    """One QAOA layer ``exp(-i β M) exp(-i γ C)`` as a circuit."""
    if mixer not in _MIXER_COMPILERS:
        raise ValueError(f"unknown mixer {mixer!r}; choose from {sorted(_MIXER_COMPILERS)}")
    layer = compile_phase_separator(terms, gamma, n_qubits, strategy=phase_strategy)
    return layer.compose(_MIXER_COMPILERS[mixer](beta, n_qubits))


def build_qaoa_circuit(terms: Iterable[tuple[float, Iterable[int]]],
                       gammas: Sequence[float], betas: Sequence[float],
                       n_qubits: int, *, mixer: str = "x",
                       phase_strategy: str = "ladder",
                       include_initial_state: bool = True) -> QuantumCircuit:
    """Full p-layer QAOA circuit (optionally including the |+>^n preparation)."""
    g, b = validate_angles(gammas, betas)
    qc = initial_plus_state_circuit(n_qubits) if include_initial_state else QuantumCircuit(n_qubits)
    for gamma, beta in zip(g, b):
        qc = qc.compose(
            qaoa_layer_circuit(terms, float(gamma), float(beta), n_qubits,
                               mixer=mixer, phase_strategy=phase_strategy)
        )
    return qc


class QAOAGateBasedSimulator(QAOAFastSimulatorBase):
    """Gate-based QAOA simulator with the fast simulators' public API.

    The cost diagonal is still precomputed in the constructor — but only so
    that ``get_expectation`` / ``get_overlap`` can be evaluated; the *state
    evolution* never uses it, exactly as in an off-the-shelf circuit
    simulator.  (For a strictly-gate-level expectation evaluation one could
    also measure term by term; the diagonal inner product is used here because
    it is the cheaper and numerically identical choice, and it only makes the
    baseline look better.)
    """

    backend_name = "gates"

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 mixer: str = "x", phase_strategy: str = "ladder",
                 dtype: np.dtype | type = np.complex128) -> None:
        if mixer not in _MIXER_COMPILERS:
            raise ValueError(f"unknown mixer {mixer!r}; choose from {sorted(_MIXER_COMPILERS)}")
        if terms is None:
            raise ValueError("the gate-based simulator requires explicit polynomial terms")
        self.mixer_name = mixer
        self.phase_strategy = phase_strategy
        self._engine = StatevectorSimulator(dtype=dtype)
        super().__init__(n_qubits, terms=terms, costs=costs)

    def layer_circuit(self, gamma: float, beta: float) -> QuantumCircuit:
        """The compiled circuit of a single QAOA layer (for gate-count studies)."""
        return qaoa_layer_circuit(self._terms, gamma, beta, self._n_qubits,
                                  mixer=self.mixer_name, phase_strategy=self.phase_strategy)

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, **kwargs: Any) -> np.ndarray:
        """Simulate p layers by gate-by-gate circuit execution."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        for gamma, beta in zip(g, b):
            circuit = self.layer_circuit(float(gamma), float(beta))
            sv = self._engine.run(circuit, initial_state=sv)
        return sv

    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|²."""
        return np.abs(np.asarray(result)) ** 2
