"""QAOA circuit construction and a gate-based QAOA simulator facade.

:func:`build_qaoa_circuit` assembles the full circuit
``Π_l exp(-i β_l M) exp(-i γ_l C)`` (applied to |+>^n) from compiled phase
separators and mixers.  :class:`QAOAGateBasedSimulator` wraps it behind the
same constructor/`simulate_qaoa`/`get_*` API as the FUR simulators, so the
benchmark harness can swap backends with one argument — this class plays the
role of "Qiskit / cuStateVec (gates)" in Figs. 2–4.

The defining inefficiency is preserved faithfully: the phase separator is
*recompiled and reapplied gate by gate at every layer and at every objective
evaluation*; nothing is cached across layers beyond what a generic circuit
simulator would cache.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..fur.base import QAOAFastSimulatorBase, validate_angles
from ..fur.precision import resolve_precision
from ..problems.terms import validate_terms
from .circuit import QuantumCircuit
from .compile import (
    compile_mixer_x,
    compile_mixer_xy_complete,
    compile_mixer_xy_ring,
    compile_phase_separator,
    initial_plus_state_circuit,
)
from .statevector import StatevectorSimulator, apply_gate

__all__ = [
    "build_qaoa_circuit",
    "qaoa_layer_circuit",
    "QAOAGateBasedSimulator",
    "QAOAGateBasedXSimulator",
    "QAOAGateBasedXYRingSimulator",
    "QAOAGateBasedXYCompleteSimulator",
]

#: amplitude dtype ↔ precision-name correspondence (the gate engine speaks
#: dtypes, the registry speaks precision names; both must agree)
_DTYPE_PRECISIONS = {
    np.dtype(np.complex128): "double",
    np.dtype(np.complex64): "single",
}


_MIXER_COMPILERS = {
    "x": compile_mixer_x,
    "xyring": compile_mixer_xy_ring,
    "xycomplete": compile_mixer_xy_complete,
}


def qaoa_layer_circuit(terms: Iterable[tuple[float, Iterable[int]]],
                       gamma: float, beta: float, n_qubits: int,
                       *, mixer: str = "x",
                       phase_strategy: str = "ladder") -> QuantumCircuit:
    """One QAOA layer ``exp(-i β M) exp(-i γ C)`` as a circuit."""
    if mixer not in _MIXER_COMPILERS:
        raise ValueError(f"unknown mixer {mixer!r}; choose from {sorted(_MIXER_COMPILERS)}")
    layer = compile_phase_separator(terms, gamma, n_qubits, strategy=phase_strategy)
    return layer.compose(_MIXER_COMPILERS[mixer](beta, n_qubits))


def build_qaoa_circuit(terms: Iterable[tuple[float, Iterable[int]]],
                       gammas: Sequence[float], betas: Sequence[float],
                       n_qubits: int, *, mixer: str = "x",
                       phase_strategy: str = "ladder",
                       include_initial_state: bool = True) -> QuantumCircuit:
    """Full p-layer QAOA circuit (optionally including the |+>^n preparation)."""
    g, b = validate_angles(gammas, betas)
    qc = initial_plus_state_circuit(n_qubits) if include_initial_state else QuantumCircuit(n_qubits)
    for gamma, beta in zip(g, b):
        qc = qc.compose(
            qaoa_layer_circuit(terms, float(gamma), float(beta), n_qubits,
                               mixer=mixer, phase_strategy=phase_strategy)
        )
    return qc


class QAOAGateBasedSimulator(QAOAFastSimulatorBase):
    """Gate-based QAOA simulator with the fast simulators' public API.

    The cost diagonal is still precomputed in the constructor — but only so
    that ``get_expectation`` / ``get_overlap`` can be evaluated; the *state
    evolution* never uses it, exactly as in an off-the-shelf circuit
    simulator.  (For a strictly-gate-level expectation evaluation one could
    also measure term by term; the diagonal inner product is used here because
    it is the cheaper and numerically identical choice, and it only makes the
    baseline look better.)
    """

    backend_name = "gates"
    supports_fused_engine = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 mixer: str | None = None, phase_strategy: str = "ladder",
                 dtype: np.dtype | type | None = None,
                 precision: str | None = None,
                 optimize: str = "default") -> None:
        mixer = type(self).mixer_name if mixer is None else mixer
        if mixer not in _MIXER_COMPILERS:
            raise ValueError(f"unknown mixer {mixer!r}; choose from {sorted(_MIXER_COMPILERS)}")
        if terms is None:
            raise ValueError("the gate-based simulator requires explicit polynomial terms")
        if dtype is not None:
            by_dtype = _DTYPE_PRECISIONS.get(np.dtype(dtype))
            if by_dtype is None:
                raise ValueError("state vector dtype must be complex64 or complex128")
            if precision is not None and resolve_precision(precision).name != by_dtype:
                raise ValueError(
                    f"dtype={np.dtype(dtype)} conflicts with precision={precision!r}"
                )
            precision = by_dtype
        elif precision is None:
            precision = "double"
        self.mixer_name = mixer
        self.phase_strategy = phase_strategy
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)
        self._engine_sim = StatevectorSimulator(dtype=self._precision.complex_dtype)

    def layer_circuit(self, gamma: float, beta: float) -> QuantumCircuit:
        """The compiled circuit of a single QAOA layer (for gate-count studies)."""
        return qaoa_layer_circuit(self._terms, gamma, beta, self._n_qubits,
                                  mixer=self.mixer_name, phase_strategy=self.phase_strategy)

    def _phase_circuit(self, gamma: float) -> QuantumCircuit:
        return compile_phase_separator(self._terms, gamma, self._n_qubits,
                                       strategy=self.phase_strategy)

    def _mixer_circuit(self, beta: float, n_trotters: int) -> QuantumCircuit:
        """The mixer circuit at one angle, Trotter-sliced for the XY mixers.

        The X mixer's RX factors commute exactly, so its slicing is a no-op
        (matching the FUR kernels, which ignore ``n_trotters`` for X).
        """
        compiler = _MIXER_COMPILERS[self.mixer_name]
        if self.mixer_name == "x" or n_trotters == 1:
            return compiler(beta, self._n_qubits)
        slice_qc = compiler(beta / n_trotters, self._n_qubits)
        qc = slice_qc
        for _ in range(n_trotters - 1):
            qc = qc.compose(slice_qc)
        return qc

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Simulate p layers by gate-by-gate circuit execution."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        for gamma, beta in zip(g, b):
            sv = self._engine_sim.run(self._phase_circuit(float(gamma)),
                                      initial_state=sv)
            sv = self._engine_sim.run(self._mixer_circuit(float(beta), n_trotters),
                                      initial_state=sv)
        return sv

    # -- kernel-provider hooks (driven by repro.fur.engine) -------------------
    # The block is a plain list of per-schedule 1-D state vectors: dense gate
    # application allocates a fresh array per gate (the baseline's defining
    # cost), so a contiguous (rows, 2^n) block would be copied apart anyway.

    def _engine_phase_tables(self) -> Any:
        return None  # the phase separator is re-applied gate by gate

    supports_batched_sv0 = True

    def _stage_block(self, sv0: np.ndarray | None,
                     rows: int) -> list[np.ndarray]:
        if sv0 is not None and np.ndim(sv0) == 2:
            return list(self._validate_sv0_block(sv0, rows))
        sv = self._validate_sv0(sv0)
        return [sv.copy() for _ in range(rows)]

    def _run_circuit_rows(self, block: list[np.ndarray],
                          circuits: Sequence[QuantumCircuit]) -> None:
        for r, circuit in enumerate(circuits):
            row = block[r]
            for gate_ in circuit:
                # dense gates return a NEW array — rebind, don't rely on
                # in-place mutation
                row = apply_gate(row, gate_, self._n_qubits)
            block[r] = row

    def _apply_phase_block(self, block: list[np.ndarray], gammas: np.ndarray,
                           plan: Any) -> None:
        self._run_circuit_rows(
            block, [self._phase_circuit(float(g)) for g in gammas])

    def _apply_mixer_block(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        self._run_circuit_rows(
            block, [self._mixer_circuit(float(b), n_trotters) for b in betas])

    def _block_expectations(self, block: list[np.ndarray],
                            costs: np.ndarray) -> np.ndarray:
        out = np.empty(len(block), dtype=np.float64)
        for r, row in enumerate(block):
            out[r] = (row.real.astype(np.float64) ** 2
                      + row.imag.astype(np.float64) ** 2) @ costs
        return out

    # -- output methods -------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|² (always float64 on output)."""
        sv = np.asarray(result)
        return (sv.real.astype(np.float64) ** 2
                + sv.imag.astype(np.float64) ** 2)


class QAOAGateBasedXSimulator(QAOAGateBasedSimulator):
    """Gate-based QAOA with the transverse-field mixer (registry class)."""

    mixer_name = "x"
    #: RX factors commute exactly — adjacent X mixers merge by angle addition
    mixer_self_commutes = True


class QAOAGateBasedXYRingSimulator(QAOAGateBasedSimulator):
    """Gate-based QAOA with the ring XY mixer (registry class)."""

    mixer_name = "xyring"


class QAOAGateBasedXYCompleteSimulator(QAOAGateBasedSimulator):
    """Gate-based QAOA with the complete-graph XY mixer (registry class)."""

    mixer_name = "xycomplete"
