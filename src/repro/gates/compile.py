"""Compilation of QAOA operators into gate sequences.

Gate-based simulators must express the QAOA phase operator
``exp(-i γ Ĉ)`` as a sequence of gates.  With the cost function given as spin
polynomial terms (Eq. 1), the standard compilation maps each term
``(w, (i₁,…,i_k))`` to ``exp(-i γ w Z_{i₁}⋯Z_{i_k})``, realized either

* as a single diagonal multi-qubit rotation (``strategy="diagonal"``, what a
  simulator with native diagonal-gate support would do), or
* as a CNOT ladder + RZ + reversed CNOT ladder (``strategy="ladder"``, the
  textbook decomposition into one- and two-qubit gates that Qiskit-style
  transpilation produces — this is what makes the LABS phase separator cost
  ≈160·n two-qubit gates per layer, Sec. VI).

The mixers are compiled to RX rotations (transverse field) or two-qubit
XX+YY rotations (ring / complete XY), in exactly the same operator order as
the FUR kernels so that cross-backend tests compare identical unitaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..problems.terms import Term, validate_terms
from . import gate as g
from .circuit import QuantumCircuit

__all__ = [
    "compile_phase_separator",
    "compile_mixer_x",
    "compile_mixer_xy_ring",
    "compile_mixer_xy_complete",
    "initial_plus_state_circuit",
    "phase_separator_gate_count",
]

PhaseStrategy = str  # "ladder" | "diagonal"


def initial_plus_state_circuit(n_qubits: int) -> QuantumCircuit:
    """Circuit preparing |+>^n from |0…0> (a Hadamard on every qubit)."""
    qc = QuantumCircuit(n_qubits)
    for q in range(n_qubits):
        qc.h(q)
    return qc


def _append_term_ladder(qc: QuantumCircuit, gamma: float, weight: float,
                        indices: tuple[int, ...]) -> None:
    """Append ``exp(-i γ w Z_{i1}…Z_{ik})`` as CNOT ladder + RZ + ladder†."""
    if len(indices) == 0:
        qc.append(g.global_phase(-gamma * weight))
        return
    if len(indices) == 1:
        qc.rz(2.0 * gamma * weight, indices[0])
        return
    target = indices[-1]
    for q in indices[:-1]:
        qc.cnot(q, target)
    qc.rz(2.0 * gamma * weight, target)
    for q in reversed(indices[:-1]):
        qc.cnot(q, target)


def _append_term_diagonal(qc: QuantumCircuit, gamma: float, weight: float,
                          indices: tuple[int, ...]) -> None:
    """Append ``exp(-i γ w Z_{i1}…Z_{ik})`` as one native diagonal gate."""
    if len(indices) == 0:
        qc.append(g.global_phase(-gamma * weight))
        return
    qc.append(g.multi_rz(2.0 * gamma * weight, indices))


def compile_phase_separator(terms: Iterable[tuple[float, Iterable[int]]],
                            gamma: float, n_qubits: int,
                            strategy: PhaseStrategy = "ladder") -> QuantumCircuit:
    """Compile ``exp(-i γ Ĉ)`` into a circuit, one gate group per cost term.

    Note the convention match with the cost diagonal: a term ``(w, t)``
    contributes ``w·(−1)^popcount(x & mask_t)`` to ``f(x)``, and
    ``exp(-i γ w Z…Z)`` applies exactly the phase ``exp(-i γ w (−1)^popcount)``
    to basis state ``x``, so the compiled circuit (including the global phase
    of constant terms) reproduces ``exp(-i γ Ĉ)`` with no extra phase freedom.
    """
    qc = QuantumCircuit(n_qubits)
    normalized = validate_terms(terms, n_qubits)
    if strategy not in ("ladder", "diagonal"):
        raise ValueError(f"unknown phase-separator strategy {strategy!r}")
    for w, idx in normalized:
        if strategy == "ladder":
            _append_term_ladder(qc, gamma, w, idx)
        else:
            _append_term_diagonal(qc, gamma, w, idx)
    return qc


def phase_separator_gate_count(terms: Iterable[tuple[float, Iterable[int]]],
                               n_qubits: int,
                               strategy: PhaseStrategy = "ladder") -> int:
    """Number of gates one phase-separator application compiles to.

    Used by the Sec. VI analysis (gate-count comparison between compiled LABS
    circuits and the FUR approach) without building the circuit.
    """
    normalized = validate_terms(terms, n_qubits)
    count = 0
    for _w, idx in normalized:
        if strategy == "diagonal" or len(idx) <= 1:
            count += 1
        else:
            count += 2 * (len(idx) - 1) + 1
    return count


def compile_mixer_x(beta: float, n_qubits: int) -> QuantumCircuit:
    """Compile ``exp(-i β Σ_i X_i)`` as RX(2β) on every qubit."""
    qc = QuantumCircuit(n_qubits)
    for q in range(n_qubits):
        qc.rx(2.0 * beta, q)
    return qc


def compile_mixer_xy_ring(beta: float, n_qubits: int) -> QuantumCircuit:
    """Compile the ring XY mixer with the same edge order as the FUR kernels."""
    from ..fur.python.furxy import ring_edges

    qc = QuantumCircuit(n_qubits)
    for i, j in ring_edges(n_qubits):
        qc.append(g.xx_plus_yy(beta, i, j))
    return qc


def compile_mixer_xy_complete(beta: float, n_qubits: int) -> QuantumCircuit:
    """Compile the complete-graph XY mixer with the FUR kernel edge order."""
    from ..fur.python.furxy import complete_edges

    qc = QuantumCircuit(n_qubits)
    for i, j in complete_edges(n_qubits):
        qc.append(g.xx_plus_yy(beta, i, j))
    return qc
