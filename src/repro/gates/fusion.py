"""Gate-fusion pass for the gate-based baseline (Sec. VI ablation).

Production state-vector simulators mitigate per-gate overhead with *gate
fusion*: consecutive gates whose combined support fits in ``F`` qubits are
multiplied together offline and applied as a single dense ``2^F × 2^F`` gate
(the paper discusses ``F = 2`` fusion in cuStateVec/qsim and argues that even
ideal fusion cannot match the precomputed-diagonal approach, because the LABS
phase separator still compiles to hundreds of fused gates per layer).

This module implements a straightforward greedy sequential fusion pass so the
ablation benchmark can quantify exactly how much fusion helps the baseline and
how far that remains from the FUR simulator.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .gate import Gate, unitary
from .statevector import apply_gate

__all__ = ["embed_gate_matrix", "fuse_gates", "fuse_circuit"]


def embed_gate_matrix(gate: Gate, support: tuple[int, ...]) -> np.ndarray:
    """Dense matrix of ``gate`` embedded into the ordered qubit set ``support``.

    ``support`` uses the same little-endian convention as the global state
    vector: local bit ``i`` of the embedded matrix corresponds to qubit
    ``support[i]``.  Every qubit the gate acts on must be in ``support``.
    """
    missing = [q for q in gate.qubits if q not in support]
    if missing:
        raise ValueError(f"gate {gate.name} acts on {missing} outside support {support}")
    m = len(support)
    local = tuple(support.index(q) for q in gate.qubits)
    local_gate = gate.on(*local)
    dim = 1 << m
    mat = np.empty((dim, dim), dtype=np.complex128)
    for col in range(dim):
        basis = np.zeros(dim, dtype=np.complex128)
        basis[col] = 1.0
        mat[:, col] = apply_gate(basis, local_gate, m)
    return mat


def fuse_gates(gates: list[Gate], max_fused_qubits: int = 2) -> list[Gate]:
    """Greedy sequential fusion of a gate list.

    Consecutive gates are merged while their combined qubit support stays
    within ``max_fused_qubits``; each merged block is emitted as a single
    dense gate.  Gates that individually act on more qubits than the fusion
    width pass through untouched.
    """
    if max_fused_qubits < 1:
        raise ValueError("max_fused_qubits must be at least 1")
    fused: list[Gate] = []
    block: list[Gate] = []
    support: list[int] = []

    def flush() -> None:
        if not block:
            return
        if len(block) == 1:
            fused.append(block[0])
        else:
            sup = tuple(sorted(support))
            mat = np.eye(1 << len(sup), dtype=np.complex128)
            for gate_ in block:
                mat = embed_gate_matrix(gate_, sup) @ mat
            fused.append(unitary(mat, sup, name=f"fused{len(block)}", check=False))
        block.clear()
        support.clear()

    for gate_ in gates:
        if gate_.num_qubits > max_fused_qubits:
            flush()
            fused.append(gate_)
            continue
        new_support = set(support) | set(gate_.qubits)
        if len(new_support) <= max_fused_qubits:
            block.append(gate_)
            support[:] = sorted(new_support)
        else:
            flush()
            block.append(gate_)
            support[:] = sorted(gate_.qubits)
    flush()
    return fused


def fuse_circuit(circuit: QuantumCircuit, max_fused_qubits: int = 2) -> QuantumCircuit:
    """Return a new circuit with the greedy fusion pass applied."""
    return QuantumCircuit(circuit.n_qubits, fuse_gates(circuit.gates, max_fused_qubits))
