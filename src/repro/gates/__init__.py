"""Gate-based state-vector simulator substrate (the paper's baseline).

Provides the gate library, circuit IR, term→gate compilation, a gate-by-gate
state-vector simulator, a greedy gate-fusion pass, and a QAOA facade class
(:class:`~repro.gates.qaoa.QAOAGateBasedSimulator`) exposing the same API as
the fast simulators in :mod:`repro.fur`.
"""

from . import gate
from .circuit import QuantumCircuit
from .compile import (
    compile_mixer_x,
    compile_mixer_xy_complete,
    compile_mixer_xy_ring,
    compile_phase_separator,
    initial_plus_state_circuit,
    phase_separator_gate_count,
)
from .fusion import embed_gate_matrix, fuse_circuit, fuse_gates
from .gate import Gate
from .qaoa import (
    QAOAGateBasedSimulator,
    QAOAGateBasedXSimulator,
    QAOAGateBasedXYCompleteSimulator,
    QAOAGateBasedXYRingSimulator,
    build_qaoa_circuit,
    qaoa_layer_circuit,
)
from .statevector import StatevectorSimulator, apply_gate

__all__ = [
    "gate",
    "Gate",
    "QuantumCircuit",
    "StatevectorSimulator",
    "apply_gate",
    "compile_phase_separator",
    "compile_mixer_x",
    "compile_mixer_xy_ring",
    "compile_mixer_xy_complete",
    "initial_plus_state_circuit",
    "phase_separator_gate_count",
    "build_qaoa_circuit",
    "qaoa_layer_circuit",
    "QAOAGateBasedSimulator",
    "QAOAGateBasedXSimulator",
    "QAOAGateBasedXYRingSimulator",
    "QAOAGateBasedXYCompleteSimulator",
    "fuse_gates",
    "fuse_circuit",
    "embed_gate_matrix",
]
