"""Gate-by-gate state-vector simulator (the Qiskit/cuStateVec-style baseline).

This is the conventional simulation strategy the paper improves upon: iterate
over every gate in the circuit and update the full 2^n state vector per gate
(Sec. III, first paragraph).  Its per-layer cost is therefore proportional to
the number of gates in the compiled phase operator — Θ(n²) two-qubit gates for
LABS — whereas the FUR simulators apply the phase operator in a single
element-wise multiply.

Dense k-qubit gates are applied by reshaping the state vector into an n-axis
tensor and contracting with ``numpy.tensordot``; diagonal gates are applied by
broadcasting the diagonal over the target axes (no dense matrix is ever
built), which mirrors the special-casing in production simulators.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .circuit import QuantumCircuit
from .gate import Gate

__all__ = ["apply_gate", "StatevectorSimulator"]


def _axes_for_qubits(qubits: Sequence[int], n_qubits: int) -> list[int]:
    """Tensor axes (C-order reshape) corresponding to the given qubits.

    Under the little-endian convention (qubit q ↔ bit q of the index), axis 0
    of ``sv.reshape([2]*n)`` is the *most significant* bit, i.e. qubit n−1, so
    qubit ``q`` lives on axis ``n−1−q``.
    """
    return [n_qubits - 1 - q for q in qubits]


def apply_gate(statevector: np.ndarray, gate: Gate, n_qubits: int) -> np.ndarray:
    """Apply one gate to a length-2^n state vector, returning the new vector.

    Diagonal gates are applied in place (and the input array is returned);
    dense gates allocate a new output array (the unavoidable cost of a
    ``tensordot`` contraction), which is part of what makes this the slower
    baseline path.
    """
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    if max(gate.qubits) >= n_qubits:
        raise ValueError(f"gate {gate.name} acts on qubit {max(gate.qubits)}; circuit has {n_qubits}")
    k = gate.num_qubits
    axes = _axes_for_qubits(gate.qubits, n_qubits)
    tensor = statevector.reshape([2] * n_qubits)

    if gate.is_diagonal:
        # Broadcast the diagonal over the gate axes: reshape it so axis q of
        # the gate maps onto tensor axis axes[q], and 1 elsewhere.
        shape = [1] * n_qubits
        for ax in axes:
            shape[ax] = 2
        # The gate's local index orders its first qubit as most significant;
        # reshaping the length-2^k diagonal to [2]*k follows the same order,
        # then we move those axes into place via explicit transposition.
        diag = gate.diagonal.astype(statevector.dtype, copy=False).reshape([2] * k)
        # Build the permutation: we need an array whose axis layout matches the
        # tensor's axes order.  Sort target axes and reorder diag accordingly.
        order = np.argsort(axes)
        diag = np.transpose(diag, order)
        full_shape = [1] * n_qubits
        for pos, ax in enumerate(sorted(axes)):
            full_shape[ax] = 2
        tensor *= diag.reshape(full_shape)
        return statevector

    mat = gate.matrix.astype(statevector.dtype, copy=False).reshape([2] * (2 * k))
    # Contract the gate's input indices (last k axes of mat) with the state
    # tensor's gate axes, then move the resulting output axes back into place.
    out = np.tensordot(mat, tensor, axes=(list(range(k, 2 * k)), axes))
    out = np.moveaxis(out, list(range(k)), axes)
    return np.ascontiguousarray(out).reshape(-1)


class StatevectorSimulator:
    """Runs a :class:`QuantumCircuit` by applying each gate in sequence."""

    def __init__(self, dtype: np.dtype | type = np.complex128) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError("state vector dtype must be complex64 or complex128")

    def zero_state(self, n_qubits: int) -> np.ndarray:
        """|0…0> state."""
        sv = np.zeros(1 << n_qubits, dtype=self.dtype)
        sv[0] = 1.0
        return sv

    def run(self, circuit: QuantumCircuit,
            initial_state: np.ndarray | None = None) -> np.ndarray:
        """Simulate the circuit and return the final state vector.

        ``initial_state`` defaults to |0…0>; when provided it is copied, never
        mutated.
        """
        n = circuit.n_qubits
        if initial_state is None:
            sv = self.zero_state(n)
        else:
            sv = np.array(initial_state, dtype=self.dtype, copy=True)
            if sv.shape != (1 << n,):
                raise ValueError(
                    f"initial state has shape {sv.shape}, expected ({1 << n},)"
                )
        for g in circuit:
            sv = apply_gate(sv, g, n)
        return sv

    def expectation_diagonal(self, statevector: np.ndarray, diagonal: np.ndarray) -> float:
        """Expectation value of a diagonal observable ``Σ_x d[x] |ψ_x|²``."""
        probs = np.abs(statevector) ** 2
        return float(np.dot(probs, np.asarray(diagonal, dtype=np.float64)))
