"""Quantum circuit container for the gate-based baseline simulator."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from . import gate as gates_lib
from .gate import Gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered list of gates on ``n`` qubits.

    This deliberately mirrors the minimal surface of mainstream circuit IRs
    (append gates, iterate, count, compose): the baseline simulator's defining
    property is that it walks this list gate by gate, so the container itself
    stays simple.
    """

    def __init__(self, n_qubits: int, gates: Iterable[Gate] | None = None) -> None:
        if n_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self._n_qubits = int(n_qubits)
        self._gates: list[Gate] = []
        if gates is not None:
            for g in gates:
                self.append(g)

    # -- construction --------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate (validating its qubit indices) and return ``self``."""
        if max(gate.qubits) >= self._n_qubits:
            raise ValueError(
                f"gate {gate.name} on qubits {gate.qubits} does not fit a "
                f"{self._n_qubits}-qubit circuit"
            )
        self._gates.append(gate)
        return self

    def extend(self, new_gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append several gates."""
        for g in new_gates:
            self.append(g)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Concatenate another circuit (must have the same qubit count)."""
        if other.n_qubits != self._n_qubits:
            raise ValueError("cannot compose circuits with different qubit counts")
        return QuantumCircuit(self._n_qubits, list(self._gates) + list(other.gates))

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (gates are immutable)."""
        return QuantumCircuit(self._n_qubits, self._gates)

    def inverse(self) -> "QuantumCircuit":
        """Circuit implementing the adjoint unitary (reversed daggered gates)."""
        return QuantumCircuit(self._n_qubits, [g.dagger() for g in reversed(self._gates)])

    # -- convenience gate builders -------------------------------------------
    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard."""
        return self.append(gates_lib.h(qubit))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X."""
        return self.append(gates_lib.x(qubit))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an RX rotation."""
        return self.append(gates_lib.rx(theta, qubit))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an RZ rotation."""
        return self.append(gates_lib.rz(theta, qubit))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append an RZZ rotation."""
        return self.append(gates_lib.rzz(theta, qubit_a, qubit_b))

    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT."""
        return self.append(gates_lib.cnot(control, target))

    # -- queries --------------------------------------------------------------
    @property
    def n_qubits(self) -> int:
        """Number of qubits."""
        return self._n_qubits

    @property
    def gates(self) -> list[Gate]:
        """The gate list (a copy; the circuit owns its internal list)."""
        return list(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names (used in the gate-count comparisons of Sec. VI)."""
        counts: dict[str, int] = {}
        for g in self._gates:
            counts[g.name] = counts.get(g.name, 0) + 1
        return counts

    def count_multiqubit_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(1 for g in self._gates if g.num_qubits >= 2)

    def depth(self) -> int:
        """Circuit depth (longest chain of gates sharing qubits)."""
        frontier = [0] * self._n_qubits
        for g in self._gates:
            level = max(frontier[q] for q in g.qubits) + 1
            for q in g.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def to_unitary(self) -> np.ndarray:
        """Dense 2^n × 2^n unitary of the whole circuit (small n only, for tests)."""
        if self._n_qubits > 12:
            raise ValueError("to_unitary refused for n > 12")
        from .statevector import StatevectorSimulator

        sim = StatevectorSimulator()
        dim = 1 << self._n_qubits
        u = np.empty((dim, dim), dtype=np.complex128)
        for col in range(dim):
            sv = np.zeros(dim, dtype=np.complex128)
            sv[col] = 1.0
            u[:, col] = sim.run(self, initial_state=sv)
        return u

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantumCircuit(n_qubits={self._n_qubits}, num_gates={self.num_gates})"
