"""repro — reproduction of "Fast Simulation of High-Depth QAOA Circuits" (SC 2023).

The package mirrors the structure of the paper's QOKit framework:

* :mod:`repro.fur` — the fast QAOA simulators built on the precomputed
  diagonal cost operator (the paper's core contribution), with CPU, simulated
  GPU and distributed (virtual-cluster) backends behind one backend registry;
* :mod:`repro.problems` — MaxCut, LABS, portfolio and SK problem generators;
* :mod:`repro.qaoa` — objective factories, parameter initialization and
  optimization drivers;
* :mod:`repro.gates` — a gate-based state-vector simulator (baseline);
* :mod:`repro.tensornet` — a tensor-network contraction simulator (baseline);
* :mod:`repro.parallel` — the virtual-cluster substrate (communicators,
  collectives, topology and performance model);
* :mod:`repro.classical` — classical heuristic solvers used for reference;
* :mod:`repro.cutting` — circuit cutting: splits the cost graph into two
  fragments across ``k`` cut qubits, evaluates each fragment on an ordinary
  full-tier backend (``4^k`` variants as one batched engine call) and
  recombines with a tensor contraction, so ``p = 1`` problems beyond the
  monolithic state budget still evaluate exactly
  (``repro.cut_qaoa_expectation(...)``; see the README's Circuit cutting
  section);
* :mod:`repro.serve` — an async serving layer over the execution engine:
  concurrent expectation requests are routed by problem fingerprint,
  micro-batched into fused engine calls and exact duplicates coalesced
  (``svc = repro.serve(backend="python")``; see the README's Serving
  section).

Quickstart — every backend/mixer combination is constructed through the
single :func:`repro.simulator` facade::

    import repro

    n = 12
    terms = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]

    sim = repro.simulator(n, terms=terms)        # fastest available backend
    costs = sim.get_cost_diagonal()              # the precomputed diagonal
    result = sim.simulate_qaoa(gammas, betas)
    energy = sim.get_expectation(result)

    # explicit backend / mixer / precision selection and introspection:
    sim = repro.simulator(n, terms=terms, backend="python", mixer="xyring")
    sim = repro.simulator(n, terms=terms, precision="single")  # complex64 state:
                                                 # ~2x bandwidth, half the memory
    spec = repro.fur.get_backend("gpu")          # mixers, precisions, device

    # batched evaluation shares the precomputed diagonal across schedules:
    energies = sim.get_expectation_batch(gammas_batch, betas_batch)

Backends self-register with capability metadata (supported mixers, device
class, distributed-ness, capability tier, ``auto`` priority) via
:func:`repro.fur.register_backend`; see :mod:`repro.fur.registry`.  The
baselines are registered too: ``backend="gates"`` resolves the gate-based
state-vector simulator and ``backend="tensornet"`` the (expectation-only)
tensor-network contraction simulator.
"""

from . import cutting, fur, problems, serve
from .cutting import CutQAOAObjective, CutQAOAPipeline, cut_qaoa_expectation
from .fur.registry import simulator
from .problems import labs, maxcut, portfolio, sk

__version__ = "1.6.0"

__all__ = [
    "cutting",
    "fur",
    "problems",
    "serve",
    "CutQAOAObjective",
    "CutQAOAPipeline",
    "cut_qaoa_expectation",
    "labs",
    "maxcut",
    "portfolio",
    "sk",
    "simulator",
    "__version__",
]
