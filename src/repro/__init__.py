"""repro — reproduction of "Fast Simulation of High-Depth QAOA Circuits" (SC 2023).

The package mirrors the structure of the paper's QOKit framework:

* :mod:`repro.fur` — the fast QAOA simulators built on the precomputed
  diagonal cost operator (the paper's core contribution), with CPU, simulated
  GPU and distributed (virtual-cluster) backends;
* :mod:`repro.problems` — MaxCut, LABS, portfolio and SK problem generators;
* :mod:`repro.qaoa` — objective factories, parameter initialization and
  optimization drivers;
* :mod:`repro.gates` — a gate-based state-vector simulator (baseline);
* :mod:`repro.tensornet` — a tensor-network contraction simulator (baseline);
* :mod:`repro.parallel` — the virtual-cluster substrate (communicators,
  collectives, topology and performance model);
* :mod:`repro.classical` — classical heuristic solvers used for reference.

Quickstart (Listing 1 of the paper)::

    import repro
    simclass = repro.fur.choose_simulator(name="auto")
    n = 12
    terms = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]
    sim = simclass(n, terms=terms)
    costs = sim.get_cost_diagonal()
    result = sim.simulate_qaoa(gamma, beta)
    energy = sim.get_expectation(result)
"""

from . import fur, problems
from .problems import labs, maxcut, portfolio, sk

__version__ = "1.0.0"

__all__ = ["fur", "problems", "labs", "maxcut", "portfolio", "sk", "__version__"]
